//! The specification machine: an architectural interpreter for the
//! bare-translation configuration the lockstep fuzzer runs under.
//!
//! This is the slow half of the differential pair. It models *only*
//! architectural state — registers, CP0, the capability file, a flat
//! byte memory with a one-`bool`-per-granule tag map, and the software
//! TLB's architectural contents (the TLB instructions execute even when
//! translation itself is bare/identity). There are no caches, no block
//! cache, no predictors, no statistics: just the paper's rules, applied
//! one instruction at a time.
//!
//! Trap delivery, delay-slot bookkeeping, and the retire order follow
//! the MIPS R4000 model the simulator documents:
//!
//! 1. fetch is validated against `PCC` (Section 4.4), then read;
//! 2. the instruction executes, possibly faulting;
//! 3. on a trap, `EPC`/`Cause`/`BadVAddr`/`CapCause` are written and the
//!    PC is left *unchanged* (the kernel resumes via
//!    [`SpecMachine::advance_past_trap`]);
//! 4. on retire, `Count` increments and the `pc`/`next_pc` pair advances
//!    (branches and jumps have a delay slot; capability jumps and `ERET`
//!    do not).

use crate::cap::{exc, pack_cause, SpecCap};
use crate::compress::{decompress128, pack128, representable128};
use crate::decode::{decode, Alu3, AluI, Cond, MulDiv, Sh, SpecOp, W};

/// The in-memory capability format, which fixes the tag granule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecFormat {
    /// The architectural 256-bit format of Figure 1 (32-byte granules).
    C256,
    /// The compressed 128-bit Low-Fat format (16-byte granules).
    C128,
}

impl SpecFormat {
    /// Size in bytes of one in-memory capability (= one tag granule).
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            SpecFormat::C256 => 32,
            SpecFormat::C128 => 16,
        }
    }
}

/// What one [`SpecMachine::step`] produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecEvent {
    /// The instruction retired normally.
    Retired,
    /// A `SYSCALL` took the exception vector (the service path: CP0 is
    /// written, the PC stays at the syscall).
    Syscall,
    /// A `BREAK` with its code; like a trap, the PC does not move.
    Break(u32),
    /// An architectural exception was delivered, with its MIPS cause
    /// code (capability faults are code 18, with `capcause` filled in).
    Trap {
        /// The MIPS exception code written to `Cause` bits 6:2.
        code: u64,
    },
    /// The access passed every architectural check but fell outside
    /// physical memory — the simulator-level `MemError` in bare mode.
    MemFault,
}

/// MIPS exception codes (`Cause` bits 6:2) for the faults the bare
/// configuration can raise.
pub mod mips {
    /// TLB modified (store to a clean page).
    pub const TLB_MOD: u64 = 1;
    /// TLB refill/invalid on a load or fetch.
    pub const TLB_LOAD: u64 = 2;
    /// TLB refill/invalid on a store.
    pub const TLB_STORE: u64 = 3;
    /// Address error (misalignment) on a load or fetch.
    pub const ADDR_LOAD: u64 = 4;
    /// Address error on a store.
    pub const ADDR_STORE: u64 = 5;
    /// System call.
    pub const SYSCALL: u64 = 8;
    /// Breakpoint.
    pub const BREAK: u64 = 9;
    /// Reserved (unallocated) instruction.
    pub const RESERVED: u64 = 10;
    /// Coprocessor unusable (CHERI disabled).
    pub const COP_UNUSABLE: u64 = 11;
    /// Integer overflow from a trapping add/subtract.
    pub const OVERFLOW: u64 = 12;
    /// Capability violation (C2E).
    pub const CAP: u64 = 18;
}

/// The CP0 subset the instruction set can reach, as plain fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct SpecCp0 {
    pub index: u64,
    pub entrylo0: u64,
    pub entrylo1: u64,
    pub badvaddr: u64,
    pub count: u64,
    pub entryhi: u64,
    pub status: u64,
    pub cause: u64,
    pub epc: u64,
    pub capcause: u64,
}

impl SpecCp0 {
    /// `MFC0`: unimplemented registers read as zero.
    #[must_use]
    pub fn read(&self, rd: u8) -> u64 {
        match rd {
            0 => self.index,
            2 => self.entrylo0,
            3 => self.entrylo1,
            8 => self.badvaddr,
            9 => self.count,
            10 => self.entryhi,
            12 => self.status,
            13 => self.cause,
            14 => self.epc,
            27 => self.capcause,
            _ => 0,
        }
    }

    /// `MTC0`: writes to read-only or unimplemented registers are
    /// discarded (`BadVAddr`, `Cause`, `CapCause` are read-only).
    pub fn write(&mut self, rd: u8, value: u64) {
        match rd {
            0 => self.index = value,
            2 => self.entrylo0 = value,
            3 => self.entrylo1 = value,
            9 => self.count = value,
            10 => self.entryhi = value,
            12 => self.status = value,
            14 => self.epc = value,
            _ => {}
        }
    }
}

const PAGE_SHIFT: u32 = 12;

/// One architectural TLB entry (a pair of 4 KB pages), with the four
/// per-page flag bits packed into a nibble.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TlbEnt {
    vpn2: u64,
    pfn0: u64,
    flags0: u8,
    pfn1: u64,
    flags1: u8,
    present: bool,
}

const FLAG_VALID: u8 = 1;
const FLAG_DIRTY: u8 = 2;
const FLAG_CAP_LOAD: u8 = 4;
const FLAG_CAP_STORE: u8 = 8;

fn flags_from_lo(lo: u64) -> u8 {
    let mut f = 0;
    if lo & 0b10 != 0 {
        f |= FLAG_VALID;
    }
    if lo & 0b100 != 0 {
        f |= FLAG_DIRTY;
    }
    if lo & (1 << 62) != 0 {
        f |= FLAG_CAP_LOAD;
    }
    if lo & (1 << 63) != 0 {
        f |= FLAG_CAP_STORE;
    }
    f
}

fn lo_from_flags(pfn: u64, f: u8) -> u64 {
    (pfn << 6)
        | if f & FLAG_VALID != 0 { 0b10 } else { 0 }
        | if f & FLAG_DIRTY != 0 { 0b100 } else { 0 }
        | if f & FLAG_CAP_LOAD != 0 { 1 << 62 } else { 0 }
        | if f & FLAG_CAP_STORE != 0 { 1 << 63 } else { 0 }
}

/// What `execute` decided; `step` turns this into trap delivery or a
/// PC update.
enum Exec {
    Next,
    Branch { target: u64, taken: bool },
    Jump { target: u64 },
    CapJump { target: u64, pcc: SpecCap },
    Trap { code: u64, badvaddr: Option<u64>, cap: Option<(u8, u8)> },
    Syscall,
    Break(u32),
    MemFault,
}

fn cap_trap(code: u8, reg: u8) -> Exec {
    Exec::Trap { code: mips::CAP, badvaddr: None, cap: Some((code, reg)) }
}

/// The specification machine.
///
/// All architectural state is public: the lockstep fuzzer compares it
/// field by field against the simulator's exported state, and tests can
/// pre-seed any configuration directly.
#[derive(Clone, Debug)]
pub struct SpecMachine {
    /// General-purpose registers; writes to `gpr[0]` are discarded.
    pub gpr: [u64; 32],
    /// Multiply/divide HI.
    pub hi: u64,
    /// Multiply/divide LO.
    pub lo: u64,
    /// PC of the next instruction to execute.
    pub pc: u64,
    /// The PC after that (differs from `pc + 4` inside a delay slot).
    pub next_pc: u64,
    /// Capability registers `C0`–`C31`, all almighty at reset.
    pub caps: [SpecCap; 32],
    /// The program-counter capability.
    pub pcc: SpecCap,
    /// Coprocessor 0.
    pub cp0: SpecCp0,
    /// Load-linked reservation (an address), if armed.
    pub ll_reservation: Option<u64>,
    /// The in-memory capability format.
    pub format: SpecFormat,
    mem: Vec<u8>,
    tags: Vec<bool>,
    tlb: Vec<TlbEnt>,
    tlb_next: usize,
}

impl SpecMachine {
    /// A reset machine with `mem_bytes` of zeroed memory: zero GPRs,
    /// PC 0, every capability register (and PCC) almighty, all tags
    /// clear, an empty 128-entry TLB.
    #[must_use]
    pub fn new(format: SpecFormat, mem_bytes: u64) -> SpecMachine {
        let granules = (mem_bytes / format.size()) as usize;
        SpecMachine {
            gpr: [0; 32],
            hi: 0,
            lo: 0,
            pc: 0,
            next_pc: 4,
            caps: [SpecCap::almighty(); 32],
            pcc: SpecCap::almighty(),
            cp0: SpecCp0::default(),
            ll_reservation: None,
            format,
            mem: vec![0; mem_bytes as usize],
            tags: vec![false; granules],
            tlb: vec![TlbEnt::default(); 128],
            tlb_next: 0,
        }
    }

    /// Places execution at `pc` with no pending branch.
    pub fn jump_to(&mut self, pc: u64) {
        self.pc = pc;
        self.next_pc = pc.wrapping_add(4);
    }

    /// Resumes past a `SYSCALL`/`BREAK` at the next architectural PC,
    /// honouring a pending branch.
    pub fn advance_past_trap(&mut self) {
        let next = self.next_pc;
        self.jump_to(next);
    }

    /// Writes a GPR, discarding writes to `$zero`.
    pub fn set_gpr(&mut self, r: u8, value: u64) {
        if r != 0 {
            self.gpr[usize::from(r)] = value;
        }
    }

    // --- memory (setup and comparison surface) -----------------------

    /// The whole memory image.
    #[must_use]
    pub fn mem_bytes(&self) -> &[u8] {
        &self.mem
    }

    /// The per-granule tag map.
    #[must_use]
    pub fn tag_bits(&self) -> &[bool] {
        &self.tags
    }

    /// Setup poke: writes one big-endian word, clearing covering tags
    /// (the same effect a guest store would have). Out-of-range pokes
    /// are a harness bug.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside memory.
    pub fn poke_u32(&mut self, addr: u64, word: u32) {
        assert!(self.store_bytes(addr, &word.to_be_bytes()).is_some(), "poke outside memory");
    }

    /// Setup poke for a whole capability: stores the formatted image and
    /// its tag at a granule-aligned address, like the OS seeding the
    /// initial environment.
    ///
    /// # Panics
    ///
    /// Panics if the address is unaligned or outside memory.
    pub fn poke_cap(&mut self, addr: u64, cap: &SpecCap) {
        assert_eq!(addr % self.format.size(), 0, "capability poke must be granule-aligned");
        assert!(self.store_cap(addr, cap).is_some(), "poke outside memory");
    }

    fn load_bytes(&self, addr: u64, size: u64) -> Option<&[u8]> {
        let end = addr.checked_add(size)?;
        if end > self.mem.len() as u64 {
            return None;
        }
        Some(&self.mem[addr as usize..end as usize])
    }

    /// Writes raw bytes and clears every covering tag — the data-store
    /// path that makes tag invalidation on overlapping stores explicit.
    fn store_bytes(&mut self, addr: u64, bytes: &[u8]) -> Option<()> {
        let size = bytes.len() as u64;
        let end = addr.checked_add(size)?;
        if end > self.mem.len() as u64 {
            return None;
        }
        self.mem[addr as usize..end as usize].copy_from_slice(bytes);
        let granule = self.format.size();
        for g in (addr / granule)..=((end - 1) / granule) {
            self.tags[g as usize] = false;
        }
        Some(())
    }

    fn fetch_u32(&self, addr: u64) -> Option<u32> {
        let b = self.load_bytes(addr, 4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn load_scalar(&self, addr: u64, width: W, unsigned: bool) -> Option<u64> {
        let b = self.load_bytes(addr, width.size())?;
        let raw = b.iter().fold(0u64, |acc, byte| (acc << 8) | u64::from(*byte));
        Some(match (width, unsigned) {
            (W::B, false) => raw as u8 as i8 as i64 as u64,
            (W::H, false) => raw as u16 as i16 as i64 as u64,
            (W::Wd, false) => raw as u32 as i32 as i64 as u64,
            (W::B | W::H | W::Wd, true) | (W::D, _) => raw,
        })
    }

    fn store_scalar(&mut self, addr: u64, width: W, value: u64) -> Option<()> {
        let size = width.size() as usize;
        let be = value.to_be_bytes();
        self.store_bytes(addr, &be[8 - size..])
    }

    fn load_cap(&self, addr: u64) -> Option<SpecCap> {
        let granule = self.format.size();
        let b = self.load_bytes(addr, granule)?;
        let tag = self.tags[(addr / granule) as usize];
        Some(match self.format {
            SpecFormat::C256 => {
                let mut image = [0u8; 32];
                image.copy_from_slice(b);
                SpecCap::from_image256(&image, tag)
            }
            SpecFormat::C128 => {
                let mut image = [0u8; 16];
                image.copy_from_slice(b);
                decompress128(&image, tag)
            }
        })
    }

    fn store_cap(&mut self, addr: u64, cap: &SpecCap) -> Option<()> {
        let granule = self.format.size();
        match self.format {
            SpecFormat::C256 => self.store_bytes(addr, &cap.image256())?,
            SpecFormat::C128 => {
                // An untagged register stores as a zeroed granule: the
                // compressed format has no bits to carry arbitrary data
                // (tagged-but-unrepresentable already trapped).
                let image = if cap.tag { pack128(cap) } else { [0u8; 16] };
                self.store_bytes(addr, &image)?;
            }
        }
        self.tags[(addr / granule) as usize] = cap.tag;
        Some(())
    }

    // --- trap delivery -----------------------------------------------

    fn raise(&mut self, code: u64, badvaddr: Option<u64>, cap: Option<(u8, u8)>) -> SpecEvent {
        let in_delay_slot = self.next_pc != self.pc.wrapping_add(4);
        self.cp0.epc = if in_delay_slot { self.pc.wrapping_sub(4) } else { self.pc };
        self.cp0.cause = ((code & 0x1f) << 2) | if in_delay_slot { 1 << 31 } else { 0 };
        if let Some(v) = badvaddr {
            self.cp0.badvaddr = v;
        }
        if let Some((cap_code, reg)) = cap {
            self.cp0.capcause = pack_cause(cap_code, reg);
        }
        SpecEvent::Trap { code }
    }

    // --- data-access checks ------------------------------------------

    /// The shared access tail for scalar loads and stores: alignment,
    /// capability check, (identity) translation. Exception priority is
    /// alignment, then the capability, exactly as the pipeline orders
    /// its address-generation and coprocessor checks.
    fn data_access(
        &mut self,
        vaddr: u64,
        size: u64,
        write: bool,
        cap: &SpecCap,
        reg: u8,
    ) -> Result<u64, Exec> {
        if vaddr & (size - 1) != 0 {
            let code = if write { mips::ADDR_STORE } else { mips::ADDR_LOAD };
            return Err(Exec::Trap { code, badvaddr: Some(vaddr), cap: None });
        }
        if let Err(c) = cap.check_data(vaddr, size, write) {
            return Err(Exec::Trap { code: mips::CAP, badvaddr: Some(vaddr), cap: Some((c, reg)) });
        }
        // Bare translation is the identity; any store that reaches
        // memory kills the load-linked reservation.
        if write {
            self.ll_reservation = None;
        }
        Ok(vaddr)
    }

    fn legacy_access(&mut self, base: u8, imm: i16, width: W, write: bool) -> Result<u64, Exec> {
        let addr = self.gpr[usize::from(base)].wrapping_add(imm as i64 as u64);
        let c0 = self.caps[0];
        let vaddr = c0.base.wrapping_add(addr);
        self.data_access(vaddr, width.size(), write, &c0, 0)
    }

    fn cap_relative_access(
        &mut self,
        cb: u8,
        rt: u8,
        imm: i8,
        width: W,
        write: bool,
    ) -> Result<u64, Exec> {
        let cap = self.caps[usize::from(cb)];
        let offset =
            self.gpr[usize::from(rt)].wrapping_add((i64::from(imm) * width.size() as i64) as u64);
        let vaddr = cap.base.wrapping_add(offset);
        self.data_access(vaddr, width.size(), write, &cap, cb)
    }

    /// The `CLC`/`CSC` effective address: `cb.base + rt + imm * granule`.
    fn cap_mem_vaddr(&self, cb: u8, rt: u8, imm: i8) -> u64 {
        let granule = self.format.size();
        let offset =
            self.gpr[usize::from(rt)].wrapping_add((i64::from(imm) * granule as i64) as u64);
        self.caps[usize::from(cb)].base.wrapping_add(offset)
    }

    // --- step --------------------------------------------------------

    /// Executes one instruction and reports what happened.
    pub fn step(&mut self) -> SpecEvent {
        let pc = self.pc;
        if let Err(code) = self.pcc.check_fetch(pc) {
            return self.raise(mips::CAP, Some(pc), Some((code, exc::PCC_REG)));
        }
        let Some(word) = self.fetch_u32(pc) else {
            return SpecEvent::MemFault;
        };
        let exec = self.execute(decode(word));
        match exec {
            Exec::Trap { code, badvaddr, cap } => return self.raise(code, badvaddr, cap),
            Exec::Syscall => {
                self.raise(mips::SYSCALL, None, None);
                return SpecEvent::Syscall;
            }
            Exec::Break(code) => {
                self.raise(mips::BREAK, None, None);
                return SpecEvent::Break(code);
            }
            Exec::MemFault => return SpecEvent::MemFault,
            Exec::Next | Exec::Branch { .. } | Exec::Jump { .. } | Exec::CapJump { .. } => {}
        }
        self.cp0.count = self.cp0.count.wrapping_add(1);
        let fallthrough = self.next_pc;
        match exec {
            Exec::Next => {
                self.pc = fallthrough;
                self.next_pc = fallthrough.wrapping_add(4);
            }
            Exec::Branch { target, taken } => {
                self.pc = fallthrough;
                self.next_pc = if taken { target } else { fallthrough.wrapping_add(4) };
            }
            Exec::Jump { target } => {
                self.pc = fallthrough;
                self.next_pc = target;
            }
            Exec::CapJump { target, pcc } => {
                // No delay slot: PCC changes atomically with PC.
                self.pcc = pcc;
                self.jump_to(target);
            }
            _ => unreachable!("traps returned above"),
        }
        SpecEvent::Retired
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, op: SpecOp) -> Exec {
        let pc = self.pc;
        let branch_target =
            |offset: i16| pc.wrapping_add(4).wrapping_add((i64::from(offset) << 2) as u64);
        match op {
            SpecOp::Alu { kind, rd, rs, rt } => {
                let a = self.gpr[usize::from(rs)];
                let b = self.gpr[usize::from(rt)];
                let v = match kind {
                    Alu3::Addu => sext32((a as u32).wrapping_add(b as u32)),
                    Alu3::Subu => sext32((a as u32).wrapping_sub(b as u32)),
                    Alu3::Add => match (a as u32 as i32).checked_add(b as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => return overflow(),
                    },
                    Alu3::Sub => match (a as u32 as i32).checked_sub(b as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => return overflow(),
                    },
                    Alu3::Daddu => a.wrapping_add(b),
                    Alu3::Dsubu => a.wrapping_sub(b),
                    Alu3::Dadd => match (a as i64).checked_add(b as i64) {
                        Some(v) => v as u64,
                        None => return overflow(),
                    },
                    Alu3::Dsub => match (a as i64).checked_sub(b as i64) {
                        Some(v) => v as u64,
                        None => return overflow(),
                    },
                    Alu3::And => a & b,
                    Alu3::Or => a | b,
                    Alu3::Xor => a ^ b,
                    Alu3::Nor => !(a | b),
                    Alu3::Slt => u64::from((a as i64) < (b as i64)),
                    Alu3::Sltu => u64::from(a < b),
                    Alu3::Movz => {
                        if b == 0 {
                            a
                        } else {
                            self.gpr[usize::from(rd)]
                        }
                    }
                    Alu3::Movn => {
                        if b != 0 {
                            a
                        } else {
                            self.gpr[usize::from(rd)]
                        }
                    }
                };
                self.set_gpr(rd, v);
                Exec::Next
            }
            SpecOp::AluImm { kind, rt, rs, imm } => {
                let a = self.gpr[usize::from(rs)];
                let se = imm as i16 as i64 as u64;
                let ze = u64::from(imm);
                let v = match kind {
                    AluI::Addiu => sext32((a as u32).wrapping_add(se as u32)),
                    AluI::Daddiu => a.wrapping_add(se),
                    AluI::Addi => match (a as u32 as i32).checked_add(se as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => return overflow(),
                    },
                    AluI::Daddi => match (a as i64).checked_add(se as i64) {
                        Some(v) => v as u64,
                        None => return overflow(),
                    },
                    AluI::Slti => u64::from((a as i64) < (se as i64)),
                    AluI::Sltiu => u64::from(a < se),
                    AluI::Andi => a & ze,
                    AluI::Ori => a | ze,
                    AluI::Xori => a ^ ze,
                };
                self.set_gpr(rt, v);
                Exec::Next
            }
            SpecOp::Lui { rt, imm } => {
                self.set_gpr(rt, sext32(u32::from(imm) << 16));
                Exec::Next
            }
            SpecOp::Shift { kind, rd, rt, amount } => {
                let v = shift(kind, self.gpr[usize::from(rt)], u32::from(amount));
                self.set_gpr(rd, v);
                Exec::Next
            }
            SpecOp::ShiftVar { kind, rd, rt, rs } => {
                let mask = match kind {
                    Sh::SllW | Sh::SrlW | Sh::SraW => 31,
                    _ => 63,
                };
                let s = (self.gpr[usize::from(rs)] as u32) & mask;
                let v = shift(kind, self.gpr[usize::from(rt)], s);
                self.set_gpr(rd, v);
                Exec::Next
            }
            SpecOp::MulDiv { kind, rs, rt } => {
                let a = self.gpr[usize::from(rs)];
                let b = self.gpr[usize::from(rt)];
                let (hi, lo) = muldiv(kind, a, b);
                self.hi = hi;
                self.lo = lo;
                Exec::Next
            }
            SpecOp::Mfhi { rd } => {
                let hi = self.hi;
                self.set_gpr(rd, hi);
                Exec::Next
            }
            SpecOp::Mflo { rd } => {
                let lo = self.lo;
                self.set_gpr(rd, lo);
                Exec::Next
            }
            SpecOp::Mthi { rs } => {
                self.hi = self.gpr[usize::from(rs)];
                Exec::Next
            }
            SpecOp::Mtlo { rs } => {
                self.lo = self.gpr[usize::from(rs)];
                Exec::Next
            }
            SpecOp::Branch { cond, rs, rt, offset } => {
                let a = self.gpr[usize::from(rs)] as i64;
                let b = self.gpr[usize::from(rt)] as i64;
                let taken = match cond {
                    Cond::Eq => a == b,
                    Cond::Ne => a != b,
                    Cond::Lez => a <= 0,
                    Cond::Gtz => a > 0,
                    Cond::Ltz => a < 0,
                    Cond::Gez => a >= 0,
                };
                Exec::Branch { target: branch_target(offset), taken }
            }
            SpecOp::BranchLink { cond, rs, offset } => {
                let a = self.gpr[usize::from(rs)] as i64;
                let taken = match cond {
                    Cond::Ltz => a < 0,
                    _ => a >= 0,
                };
                // The link register is written whether or not the
                // branch is taken.
                self.set_gpr(31, pc.wrapping_add(8));
                Exec::Branch { target: branch_target(offset), taken }
            }
            SpecOp::J { target } => Exec::Jump { target: region_target(pc, target) },
            SpecOp::Jal { target } => {
                self.set_gpr(31, pc.wrapping_add(8));
                Exec::Jump { target: region_target(pc, target) }
            }
            SpecOp::Jr { rs } => Exec::Jump { target: self.gpr[usize::from(rs)] },
            SpecOp::Jalr { rd, rs } => {
                let target = self.gpr[usize::from(rs)];
                self.set_gpr(rd, pc.wrapping_add(8));
                Exec::Jump { target }
            }
            SpecOp::Load { width, rt, base, imm, unsigned } => {
                match self.legacy_access(base, imm, width, false) {
                    Ok(addr) => match self.load_scalar(addr, width, unsigned) {
                        Some(v) => {
                            self.set_gpr(rt, v);
                            Exec::Next
                        }
                        None => Exec::MemFault,
                    },
                    Err(e) => e,
                }
            }
            SpecOp::Store { width, rt, base, imm } => {
                match self.legacy_access(base, imm, width, true) {
                    Ok(addr) => {
                        let v = self.gpr[usize::from(rt)];
                        match self.store_scalar(addr, width, v) {
                            Some(()) => Exec::Next,
                            None => Exec::MemFault,
                        }
                    }
                    Err(e) => e,
                }
            }
            SpecOp::LoadLinked { width, rt, base, imm } => {
                match self.legacy_access(base, imm, width, false) {
                    Ok(addr) => match self.load_scalar(addr, width, false) {
                        Some(v) => {
                            self.set_gpr(rt, v);
                            self.ll_reservation = Some(addr);
                            Exec::Next
                        }
                        None => Exec::MemFault,
                    },
                    Err(e) => e,
                }
            }
            SpecOp::StoreCond { width, rt, base, imm } => {
                let reserved = self.ll_reservation;
                match self.legacy_access(base, imm, width, true) {
                    Ok(addr) => {
                        if reserved == Some(addr) {
                            let v = self.gpr[usize::from(rt)];
                            if self.store_scalar(addr, width, v).is_none() {
                                return Exec::MemFault;
                            }
                            self.set_gpr(rt, 1);
                        } else {
                            self.set_gpr(rt, 0);
                        }
                        self.ll_reservation = None;
                        Exec::Next
                    }
                    Err(e) => e,
                }
            }
            SpecOp::Syscall => Exec::Syscall,
            SpecOp::Break { code } => Exec::Break(code),
            SpecOp::Mfc0 { rt, rd } => {
                let v = self.cp0.read(rd);
                self.set_gpr(rt, v);
                Exec::Next
            }
            SpecOp::Mtc0 { rt, rd } => {
                let v = self.gpr[usize::from(rt)];
                self.cp0.write(rd, v);
                Exec::Next
            }
            SpecOp::Tlbwi | SpecOp::Tlbwr => {
                let entry = TlbEnt {
                    vpn2: self.cp0.entryhi >> (PAGE_SHIFT + 1),
                    pfn0: (self.cp0.entrylo0 >> 6) & 0xf_ffff_ffff,
                    flags0: flags_from_lo(self.cp0.entrylo0),
                    pfn1: (self.cp0.entrylo1 >> 6) & 0xf_ffff_ffff,
                    flags1: flags_from_lo(self.cp0.entrylo1),
                    present: true,
                };
                if matches!(op, SpecOp::Tlbwi) {
                    let idx = (self.cp0.index as usize) % self.tlb.len();
                    self.tlb[idx] = entry;
                } else {
                    // "Random" replacement is round-robin, after evicting
                    // duplicates of the same page pair.
                    for e in &mut self.tlb {
                        if e.present && e.vpn2 == entry.vpn2 {
                            *e = TlbEnt::default();
                        }
                    }
                    let slot = self.tlb_next;
                    self.tlb[slot] = entry;
                    self.tlb_next = (self.tlb_next + 1) % self.tlb.len();
                }
                Exec::Next
            }
            SpecOp::Tlbp => {
                let vpn2 = self.cp0.entryhi >> (PAGE_SHIFT + 1);
                self.cp0.index = match self.tlb.iter().position(|e| e.present && e.vpn2 == vpn2) {
                    Some(i) => i as u64,
                    None => 1 << 31,
                };
                Exec::Next
            }
            SpecOp::Tlbr => {
                let e = self.tlb[(self.cp0.index as usize) % self.tlb.len()];
                self.cp0.entryhi = e.vpn2 << (PAGE_SHIFT + 1);
                self.cp0.entrylo0 = lo_from_flags(e.pfn0, e.flags0);
                self.cp0.entrylo1 = lo_from_flags(e.pfn1, e.flags1);
                Exec::Next
            }
            SpecOp::Eret => {
                // No delay slot: modelled as a capability jump with the
                // PCC unchanged.
                Exec::CapJump { target: self.cp0.epc, pcc: self.pcc }
            }
            SpecOp::CGet { field, rd, cb } => {
                let cap = self.caps[usize::from(cb)];
                let v = match field {
                    0 => cap.base,
                    1 => cap.length,
                    2 => u64::from(cap.tag),
                    _ => u64::from(cap.perms),
                };
                self.set_gpr(rd, v);
                Exec::Next
            }
            SpecOp::CGetPcc { rd, cd } => {
                self.set_gpr(rd, pc);
                self.caps[usize::from(cd)] = self.pcc;
                Exec::Next
            }
            SpecOp::CIncBase { cd, cb, rt } => {
                let delta = self.gpr[usize::from(rt)];
                match self.caps[usize::from(cb)].inc_base(delta) {
                    Ok(cap) => {
                        self.caps[usize::from(cd)] = cap;
                        Exec::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            SpecOp::CSetLen { cd, cb, rt } => {
                let len = self.gpr[usize::from(rt)];
                match self.caps[usize::from(cb)].set_len(len) {
                    Ok(cap) => {
                        self.caps[usize::from(cd)] = cap;
                        Exec::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            SpecOp::CClearTag { cd, cb } => {
                self.caps[usize::from(cd)] = self.caps[usize::from(cb)].clear_tag();
                Exec::Next
            }
            SpecOp::CAndPerm { cd, cb, rt } => {
                let mask = self.gpr[usize::from(rt)] as u32;
                match self.caps[usize::from(cb)].and_perm(mask) {
                    Ok(cap) => {
                        self.caps[usize::from(cd)] = cap;
                        Exec::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            SpecOp::CToPtr { rd, cb, ct } => {
                let v = self.caps[usize::from(cb)].to_ptr(&self.caps[usize::from(ct)]);
                self.set_gpr(rd, v);
                Exec::Next
            }
            SpecOp::CFromPtr { cd, cb, rt } => {
                let ptr = self.gpr[usize::from(rt)];
                match SpecCap::from_ptr(&self.caps[usize::from(cb)], ptr) {
                    Ok(cap) => {
                        self.caps[usize::from(cd)] = cap;
                        Exec::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            SpecOp::CBranchTag { on_set, cb, offset } => {
                let tag = self.caps[usize::from(cb)].tag;
                Exec::Branch { target: branch_target(offset), taken: tag == on_set }
            }
            SpecOp::Clc { cd, cb, rt, imm } => {
                let granule = self.format.size();
                let vaddr = self.cap_mem_vaddr(cb, rt, imm);
                if let Err(e) = self.caps[usize::from(cb)].check_cap(vaddr, false, granule) {
                    return cap_trap(e, cb);
                }
                match self.load_cap(vaddr) {
                    Some(cap) => {
                        self.caps[usize::from(cd)] = cap;
                        Exec::Next
                    }
                    None => Exec::MemFault,
                }
            }
            SpecOp::Csc { cs, cb, rt, imm } => {
                let granule = self.format.size();
                let vaddr = self.cap_mem_vaddr(cb, rt, imm);
                if let Err(e) = self.caps[usize::from(cb)].check_cap(vaddr, true, granule) {
                    return cap_trap(e, cb);
                }
                let stored = self.caps[usize::from(cs)];
                if self.format == SpecFormat::C128 && stored.tag && !representable128(&stored) {
                    // The Low-Fat format cannot encode this region
                    // (Section 4.1's alignment rules).
                    return cap_trap(exc::ALIGNMENT, cs);
                }
                if self.store_cap(vaddr, &stored).is_none() {
                    return Exec::MemFault;
                }
                self.ll_reservation = None;
                Exec::Next
            }
            SpecOp::CLoad { width, rd, cb, rt, imm, unsigned } => {
                match self.cap_relative_access(cb, rt, imm, width, false) {
                    Ok(addr) => match self.load_scalar(addr, width, unsigned) {
                        Some(v) => {
                            self.set_gpr(rd, v);
                            Exec::Next
                        }
                        None => Exec::MemFault,
                    },
                    Err(e) => e,
                }
            }
            SpecOp::CStore { width, rs, cb, rt, imm } => {
                match self.cap_relative_access(cb, rt, imm, width, true) {
                    Ok(addr) => {
                        let v = self.gpr[usize::from(rs)];
                        match self.store_scalar(addr, width, v) {
                            Some(()) => Exec::Next,
                            None => Exec::MemFault,
                        }
                    }
                    Err(e) => e,
                }
            }
            SpecOp::Clld { rd, cb, rt, imm } => {
                match self.cap_relative_access(cb, rt, imm, W::D, false) {
                    Ok(addr) => match self.load_scalar(addr, W::D, false) {
                        Some(v) => {
                            self.set_gpr(rd, v);
                            self.ll_reservation = Some(addr);
                            Exec::Next
                        }
                        None => Exec::MemFault,
                    },
                    Err(e) => e,
                }
            }
            SpecOp::Cscd { rs, cb, rt, imm } => {
                let reserved = self.ll_reservation;
                match self.cap_relative_access(cb, rt, imm, W::D, true) {
                    Ok(addr) => {
                        if reserved == Some(addr) {
                            let v = self.gpr[usize::from(rs)];
                            if self.store_scalar(addr, W::D, v).is_none() {
                                return Exec::MemFault;
                            }
                            self.set_gpr(rs, 1);
                        } else {
                            self.set_gpr(rs, 0);
                        }
                        self.ll_reservation = None;
                        Exec::Next
                    }
                    Err(e) => e,
                }
            }
            SpecOp::Cjr { cb } => {
                let cap = self.caps[usize::from(cb)];
                if let Err(e) = cap.check_fetch(cap.base) {
                    return cap_trap(e, cb);
                }
                Exec::CapJump { target: cap.base, pcc: cap }
            }
            SpecOp::Cjalr { cd, cb } => {
                let cap = self.caps[usize::from(cb)];
                if let Err(e) = cap.check_fetch(cap.base) {
                    return cap_trap(e, cb);
                }
                // The link capability is the current PCC advanced to the
                // return point (capability jumps have no delay slot).
                let ret = pc.wrapping_add(4);
                match self.pcc.inc_base(ret.wrapping_sub(self.pcc.base)) {
                    Ok(link) => self.caps[usize::from(cd)] = link,
                    Err(e) => return cap_trap(e, cb),
                }
                Exec::CapJump { target: cap.base, pcc: cap }
            }
            SpecOp::Illegal { .. } => {
                Exec::Trap { code: mips::RESERVED, badvaddr: None, cap: None }
            }
        }
    }
}

fn overflow() -> Exec {
    Exec::Trap { code: mips::OVERFLOW, badvaddr: None, cap: None }
}

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

/// The J/JAL target: the low 28 bits replace the low 28 bits of the
/// address of the delay slot.
fn region_target(pc: u64, target: u32) -> u64 {
    (pc.wrapping_add(4) & !0x0fff_ffff) | (u64::from(target) << 2)
}

fn shift(kind: Sh, v: u64, s: u32) -> u64 {
    match kind {
        Sh::SllW => sext32((v as u32) << s),
        Sh::SrlW => sext32((v as u32) >> s),
        Sh::SraW => sext32((((v as u32) as i32) >> s) as u32),
        Sh::SllD => v << s,
        Sh::SrlD => v >> s,
        Sh::SraD => ((v as i64) >> s) as u64,
        Sh::SllD32 => v << (s + 32),
        Sh::SrlD32 => v >> (s + 32),
        Sh::SraD32 => ((v as i64) >> (s + 32)) as u64,
    }
}

fn muldiv(kind: MulDiv, a: u64, b: u64) -> (u64, u64) {
    match kind {
        MulDiv::Mult => {
            let p = i64::from(a as u32 as i32) * i64::from(b as u32 as i32);
            (sext32((p >> 32) as u32), sext32(p as u32))
        }
        MulDiv::Multu => {
            let p = u64::from(a as u32) * u64::from(b as u32);
            (sext32((p >> 32) as u32), sext32(p as u32))
        }
        MulDiv::Dmult => {
            let p = i128::from(a as i64) * i128::from(b as i64);
            ((p >> 64) as u64, p as u64)
        }
        MulDiv::Dmultu => {
            let p = u128::from(a) * u128::from(b);
            ((p >> 64) as u64, p as u64)
        }
        MulDiv::Div => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            if y == 0 {
                (0, 0)
            } else {
                (sext32(x.wrapping_rem(y) as u32), sext32(x.wrapping_div(y) as u32))
            }
        }
        MulDiv::Divu => {
            let (x, y) = (a as u32, b as u32);
            if y == 0 {
                (0, 0)
            } else {
                (sext32(x % y), sext32(x / y))
            }
        }
        MulDiv::Ddiv => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                (0, 0)
            } else {
                (x.wrapping_rem(y) as u64, x.wrapping_div(y) as u64)
            }
        }
        MulDiv::Ddivu => {
            if b == 0 {
                (0, 0)
            } else {
                (a % b, a / b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::perms;

    const MEM: u64 = 1 << 20;

    fn machine(words: &[u32]) -> SpecMachine {
        let mut m = SpecMachine::new(SpecFormat::C256, MEM);
        for (i, w) in words.iter().enumerate() {
            m.poke_u32(0x1000 + 4 * i as u64, *w);
        }
        m.jump_to(0x1000);
        m
    }

    // Minimal local assemblers, independent of the simulator's encoder.
    fn ori(rt: u8, rs: u8, imm: u16) -> u32 {
        (0x0d << 26) | (u32::from(rs) << 21) | (u32::from(rt) << 16) | u32::from(imm)
    }
    fn sb(rt: u8, base: u8, imm: u16) -> u32 {
        (0x28 << 26) | (u32::from(base) << 21) | (u32::from(rt) << 16) | u32::from(imm)
    }
    fn cop2(sub: u32, r1: u8, r2: u8, r3: u8, imm6: u32) -> u32 {
        (0x12 << 26)
            | (sub << 21)
            | (u32::from(r1) << 16)
            | (u32::from(r2) << 11)
            | (u32::from(r3) << 6)
            | (imm6 & 0x3f)
    }

    #[test]
    fn ori_retires_and_advances() {
        let mut m = machine(&[ori(8, 0, 0x1234)]);
        assert_eq!(m.step(), SpecEvent::Retired);
        assert_eq!(m.gpr[8], 0x1234);
        assert_eq!((m.pc, m.next_pc), (0x1004, 0x1008));
        assert_eq!(m.cp0.count, 1);
    }

    #[test]
    fn delay_slot_trap_reports_branch_pc() {
        // lui $8, 0x4000 ; beq $0,$0,+4 ; add $8,$8,$8 (overflows in
        // the delay slot).
        let lui = (0x0f << 26) | (8 << 16) | 0x4000;
        let beq = (0x04 << 26) | 4u32;
        let add = (8 << 21) | (8 << 16) | (8 << 11) | 0x20;
        let mut m = machine(&[lui, beq, add]);
        assert_eq!(m.step(), SpecEvent::Retired);
        assert_eq!(m.step(), SpecEvent::Retired); // the branch itself
        let e = m.step(); // delay slot overflows
        assert_eq!(e, SpecEvent::Trap { code: mips::OVERFLOW });
        assert_eq!(m.cp0.epc, 0x1004, "EPC points at the branch");
        assert_eq!(m.cp0.cause & (1 << 31), 1 << 31, "BD bit set");
    }

    #[test]
    fn byte_store_clears_covering_tag() {
        let mut m = machine(&[sb(0, 9, 0)]);
        m.gpr[9] = 0x8000;
        m.poke_cap(0x8000, &SpecCap::almighty());
        assert!(m.tag_bits()[0x8000 / 32]);
        assert_eq!(m.step(), SpecEvent::Retired);
        assert!(!m.tag_bits()[0x8000 / 32], "overlapping store must clear the tag");
    }

    #[test]
    fn cap_roundtrip_through_memory() {
        // CIncBase c1, c0, $8 ; CSC c1, c0, $9, 0 ; CLC c2, c0, $9, 0
        let mut m = machine(&[cop2(5, 1, 0, 8, 0), cop2(14, 1, 0, 9, 0), cop2(13, 2, 0, 9, 0)]);
        m.gpr[8] = 0x4000;
        m.gpr[9] = 0x8000;
        for _ in 0..3 {
            assert_eq!(m.step(), SpecEvent::Retired);
        }
        assert_eq!(m.caps[2].base, 0x4000);
        assert!(m.caps[2].tag);
    }

    #[test]
    fn untagged_dereference_is_tag_violation() {
        // CClearTag c1, c0 ; CLB $2, $0(c1)
        let mut m = machine(&[cop2(7, 1, 0, 0, 0), cop2(15, 2, 1, 0, 0)]);
        assert_eq!(m.step(), SpecEvent::Retired);
        assert_eq!(m.step(), SpecEvent::Trap { code: mips::CAP });
        assert_eq!(m.cp0.capcause, pack_cause(exc::TAG, 1));
    }

    #[test]
    fn fetch_outside_pcc_is_a_pcc_fault() {
        let mut m = machine(&[]);
        m.pcc = SpecCap { tag: true, perms: perms::ALL, reserved: 0, base: 0x1000, length: 0x10 };
        m.jump_to(0x2000);
        assert_eq!(m.step(), SpecEvent::Trap { code: mips::CAP });
        assert_eq!(m.cp0.capcause, pack_cause(exc::LENGTH, exc::PCC_REG));
        assert_eq!(m.cp0.badvaddr, 0x2000);
    }

    #[test]
    fn out_of_memory_fetch_is_a_memfault() {
        let mut m = machine(&[]);
        m.jump_to(MEM);
        assert_eq!(m.step(), SpecEvent::MemFault);
    }

    #[test]
    fn sc_fails_after_intervening_store() {
        // ll $2, 0($9) ; sb $0, 8($9) ; sc $2, 0($9)
        let ll = (0x30 << 26) | (9 << 21) | (2 << 16);
        let sc = (0x38 << 26) | (9 << 21) | (2 << 16);
        let mut m = machine(&[ll, sb(0, 9, 8), sc]);
        m.gpr[9] = 0x8000;
        for _ in 0..3 {
            assert_eq!(m.step(), SpecEvent::Retired);
        }
        assert_eq!(m.gpr[2], 0, "reservation was killed by the store");
    }

    #[test]
    fn tlb_instructions_round_trip_architecturally() {
        // mtc0 entryhi ; tlbwr ; tlbp — probe should find index 0.
        let mtc0 = |rt: u8, rd: u8| {
            (0x10 << 26) | (0x04 << 21) | (u32::from(rt) << 16) | (u32::from(rd) << 11)
        };
        let tlbwr = (0x10 << 26) | (1 << 25) | 0x06;
        let tlbp = (0x10 << 26) | (1 << 25) | 0x08;
        let mut m = machine(&[ori(8, 0, 0x2000), mtc0(8, 10), tlbwr, tlbp]);
        for _ in 0..4 {
            assert_eq!(m.step(), SpecEvent::Retired);
        }
        assert_eq!(m.cp0.index, 0);
    }
}
