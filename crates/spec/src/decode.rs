//! The specification decoder: raw 32-bit words to [`SpecOp`].
//!
//! Re-derived from the documented opcode tables (MIPS64 manuals for the
//! base ISA; the COP2 layout described in the paper's Table 1 with a
//! 5-bit sub-opcode in bits 25:21). The simulator's decoder is *not*
//! consulted — if the two tables disagree, the lockstep fuzzer reports
//! it as a divergence, which is the point.
//!
//! Anything not in the tables decodes to [`SpecOp::Illegal`], which the
//! machine turns into a Reserved Instruction exception.

/// Three-register ALU operations (SPECIAL space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alu3 {
    /// Trapping 32-bit add.
    Add,
    /// Wrapping 32-bit add.
    Addu,
    /// Trapping 32-bit subtract.
    Sub,
    /// Wrapping 32-bit subtract.
    Subu,
    /// Trapping 64-bit add.
    Dadd,
    /// Wrapping 64-bit add.
    Daddu,
    /// Trapping 64-bit subtract.
    Dsub,
    /// Wrapping 64-bit subtract.
    Dsubu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise nor.
    Nor,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Conditional move if `rt == 0`.
    Movz,
    /// Conditional move if `rt != 0`.
    Movn,
}

/// Immediate ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluI {
    /// Trapping 32-bit add-immediate.
    Addi,
    /// Wrapping 32-bit add-immediate.
    Addiu,
    /// Trapping 64-bit add-immediate.
    Daddi,
    /// Wrapping 64-bit add-immediate.
    Daddiu,
    /// Signed set-less-than immediate.
    Slti,
    /// Unsigned set-less-than immediate (sign-extended operand).
    Sltiu,
    /// And with zero-extended immediate.
    Andi,
    /// Or with zero-extended immediate.
    Ori,
    /// Xor with zero-extended immediate.
    Xori,
}

/// Shift operations; `W` forms operate on the low 32 bits and
/// sign-extend, `D` forms are 64-bit, `D32` forms shift by `amount+32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sh {
    SllW,
    SrlW,
    SraW,
    SllD,
    SrlD,
    SraD,
    SllD32,
    SrlD32,
    SraD32,
}

/// Multiply/divide operations (results to HI/LO).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MulDiv {
    Mult,
    Multu,
    Div,
    Divu,
    Dmult,
    Dmultu,
    Ddiv,
    Ddivu,
}

/// Branch comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lez,
    Gtz,
    Ltz,
    Gez,
}

/// Data access widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum W {
    B,
    H,
    Wd,
    D,
}

impl W {
    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            W::B => 1,
            W::H => 2,
            W::Wd => 4,
            W::D => 8,
        }
    }
}

/// One decoded instruction, as the specification machine executes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecOp {
    /// Three-register ALU.
    Alu { kind: Alu3, rd: u8, rs: u8, rt: u8 },
    /// Immediate ALU.
    AluImm { kind: AluI, rt: u8, rs: u8, imm: u16 },
    /// Load upper immediate (sign-extended into 64 bits).
    Lui { rt: u8, imm: u16 },
    /// Shift by a constant amount.
    Shift { kind: Sh, rd: u8, rt: u8, amount: u8 },
    /// Shift by a register amount (no `D32` forms exist).
    ShiftVar { kind: Sh, rd: u8, rt: u8, rs: u8 },
    /// Multiply or divide into HI/LO.
    MulDiv { kind: MulDiv, rs: u8, rt: u8 },
    /// Move from HI.
    Mfhi { rd: u8 },
    /// Move to HI.
    Mthi { rs: u8 },
    /// Move from LO.
    Mflo { rd: u8 },
    /// Move to LO.
    Mtlo { rs: u8 },
    /// Conditional branch (delay slot).
    Branch { cond: Cond, rs: u8, rt: u8, offset: i16 },
    /// Branch-and-link (`BLTZAL`/`BGEZAL`); writes `$31 = pc + 8`.
    BranchLink { cond: Cond, rs: u8, offset: i16 },
    /// Absolute-region jump.
    J { target: u32 },
    /// Absolute-region jump-and-link (`$31 = pc + 8`).
    Jal { target: u32 },
    /// Register jump.
    Jr { rs: u8 },
    /// Register jump-and-link.
    Jalr { rd: u8, rs: u8 },
    /// Legacy load through C0.
    Load { width: W, rt: u8, base: u8, imm: i16, unsigned: bool },
    /// Legacy store through C0.
    Store { width: W, rt: u8, base: u8, imm: i16 },
    /// Load-linked (arms the reservation).
    LoadLinked { width: W, rt: u8, base: u8, imm: i16 },
    /// Store-conditional (succeeds only on an intact reservation).
    StoreCond { width: W, rt: u8, base: u8, imm: i16 },
    /// System call.
    Syscall,
    /// Breakpoint with its 20-bit code.
    Break { code: u32 },
    /// CP0 register read.
    Mfc0 { rt: u8, rd: u8 },
    /// CP0 register write.
    Mtc0 { rt: u8, rd: u8 },
    /// TLB write, indexed.
    Tlbwi,
    /// TLB write, "random" (round-robin in this model).
    Tlbwr,
    /// TLB probe.
    Tlbp,
    /// TLB read, indexed.
    Tlbr,
    /// Exception return (no delay slot).
    Eret,
    /// Capability field read into a GPR: 0 = base, 1 = length, 2 = tag,
    /// 3 = perms (Table 1's query instructions share a shape).
    CGet { field: u8, rd: u8, cb: u8 },
    /// `CGetPCC`: PC to `rd`, PCC to `cd`.
    CGetPcc { rd: u8, cd: u8 },
    /// `CIncBase`.
    CIncBase { cd: u8, cb: u8, rt: u8 },
    /// `CSetLen`.
    CSetLen { cd: u8, cb: u8, rt: u8 },
    /// `CClearTag`.
    CClearTag { cd: u8, cb: u8 },
    /// `CAndPerm`.
    CAndPerm { cd: u8, cb: u8, rt: u8 },
    /// `CToPtr`.
    CToPtr { rd: u8, cb: u8, ct: u8 },
    /// `CFromPtr`.
    CFromPtr { cd: u8, cb: u8, rt: u8 },
    /// Branch if tag clear (`CBTU`) / set (`CBTS`).
    CBranchTag { on_set: bool, cb: u8, offset: i16 },
    /// Capability load.
    Clc { cd: u8, cb: u8, rt: u8, imm: i8 },
    /// Capability store.
    Csc { cs: u8, cb: u8, rt: u8, imm: i8 },
    /// Capability-relative scalar load.
    CLoad { width: W, rd: u8, cb: u8, rt: u8, imm: i8, unsigned: bool },
    /// Capability-relative scalar store.
    CStore { width: W, rs: u8, cb: u8, rt: u8, imm: i8 },
    /// Capability-relative load-linked doubleword.
    Clld { rd: u8, cb: u8, rt: u8, imm: i8 },
    /// Capability-relative store-conditional doubleword.
    Cscd { rs: u8, cb: u8, rt: u8, imm: i8 },
    /// Capability jump.
    Cjr { cb: u8 },
    /// Capability jump-and-link.
    Cjalr { cd: u8, cb: u8 },
    /// Unallocated encoding: Reserved Instruction exception, carrying
    /// the raw word.
    Illegal { word: u32 },
}

/// Decodes one instruction word against the specification's own tables.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn decode(word: u32) -> SpecOp {
    let field = |hi: u32, lo: u32| (word >> lo) & ((1u32 << (hi - lo + 1)) - 1);
    let rs = field(25, 21) as u8;
    let rt = field(20, 16) as u8;
    let rd = field(15, 11) as u8;
    let sa = field(10, 6) as u8;
    let funct = field(5, 0);
    let imm = field(15, 0) as u16;
    let simm = imm as i16;
    let illegal = SpecOp::Illegal { word };

    let alu3 = |kind| SpecOp::Alu { kind, rd, rs, rt };
    let alui = |kind| SpecOp::AluImm { kind, rt, rs, imm };
    let shift = |kind| SpecOp::Shift { kind, rd, rt, amount: sa };
    let shiftv = |kind| SpecOp::ShiftVar { kind, rd, rt, rs };
    let muldiv = |kind| SpecOp::MulDiv { kind, rs, rt };
    let load = |width, unsigned| SpecOp::Load { width, rt, base: rs, imm: simm, unsigned };
    let store = |width| SpecOp::Store { width, rt, base: rs, imm: simm };

    match field(31, 26) {
        // --- SPECIAL -------------------------------------------------
        0x00 => match funct {
            0x00 => shift(Sh::SllW),
            0x02 => shift(Sh::SrlW),
            0x03 => shift(Sh::SraW),
            0x04 => shiftv(Sh::SllW),
            0x06 => shiftv(Sh::SrlW),
            0x07 => shiftv(Sh::SraW),
            0x08 => SpecOp::Jr { rs },
            0x09 => SpecOp::Jalr { rd, rs },
            0x0a => alu3(Alu3::Movz),
            0x0b => alu3(Alu3::Movn),
            0x0c => SpecOp::Syscall,
            0x0d => SpecOp::Break { code: field(25, 6) },
            0x10 => SpecOp::Mfhi { rd },
            0x11 => SpecOp::Mthi { rs },
            0x12 => SpecOp::Mflo { rd },
            0x13 => SpecOp::Mtlo { rs },
            0x14 => shiftv(Sh::SllD),
            0x16 => shiftv(Sh::SrlD),
            0x17 => shiftv(Sh::SraD),
            0x18 => muldiv(MulDiv::Mult),
            0x19 => muldiv(MulDiv::Multu),
            0x1a => muldiv(MulDiv::Div),
            0x1b => muldiv(MulDiv::Divu),
            0x1c => muldiv(MulDiv::Dmult),
            0x1d => muldiv(MulDiv::Dmultu),
            0x1e => muldiv(MulDiv::Ddiv),
            0x1f => muldiv(MulDiv::Ddivu),
            0x20 => alu3(Alu3::Add),
            0x21 => alu3(Alu3::Addu),
            0x22 => alu3(Alu3::Sub),
            0x23 => alu3(Alu3::Subu),
            0x24 => alu3(Alu3::And),
            0x25 => alu3(Alu3::Or),
            0x26 => alu3(Alu3::Xor),
            0x27 => alu3(Alu3::Nor),
            0x2a => alu3(Alu3::Slt),
            0x2b => alu3(Alu3::Sltu),
            0x2c => alu3(Alu3::Dadd),
            0x2d => alu3(Alu3::Daddu),
            0x2e => alu3(Alu3::Dsub),
            0x2f => alu3(Alu3::Dsubu),
            0x38 => shift(Sh::SllD),
            0x3a => shift(Sh::SrlD),
            0x3b => shift(Sh::SraD),
            0x3c => shift(Sh::SllD32),
            0x3e => shift(Sh::SrlD32),
            0x3f => shift(Sh::SraD32),
            _ => illegal,
        },
        // --- REGIMM --------------------------------------------------
        0x01 => match rt {
            0x00 => SpecOp::Branch { cond: Cond::Ltz, rs, rt: 0, offset: simm },
            0x01 => SpecOp::Branch { cond: Cond::Gez, rs, rt: 0, offset: simm },
            0x10 => SpecOp::BranchLink { cond: Cond::Ltz, rs, offset: simm },
            0x11 => SpecOp::BranchLink { cond: Cond::Gez, rs, offset: simm },
            _ => illegal,
        },
        0x02 => SpecOp::J { target: field(25, 0) },
        0x03 => SpecOp::Jal { target: field(25, 0) },
        0x04 => SpecOp::Branch { cond: Cond::Eq, rs, rt, offset: simm },
        0x05 => SpecOp::Branch { cond: Cond::Ne, rs, rt, offset: simm },
        0x06 => SpecOp::Branch { cond: Cond::Lez, rs, rt: 0, offset: simm },
        0x07 => SpecOp::Branch { cond: Cond::Gtz, rs, rt: 0, offset: simm },
        0x08 => alui(AluI::Addi),
        0x09 => alui(AluI::Addiu),
        0x0a => alui(AluI::Slti),
        0x0b => alui(AluI::Sltiu),
        0x0c => alui(AluI::Andi),
        0x0d => alui(AluI::Ori),
        0x0e => alui(AluI::Xori),
        0x0f => SpecOp::Lui { rt, imm },
        // --- COP0 ----------------------------------------------------
        0x10 => {
            if field(25, 25) == 1 {
                match funct {
                    0x01 => SpecOp::Tlbr,
                    0x02 => SpecOp::Tlbwi,
                    0x06 => SpecOp::Tlbwr,
                    0x08 => SpecOp::Tlbp,
                    0x18 => SpecOp::Eret,
                    _ => illegal,
                }
            } else {
                match rs {
                    0x00 | 0x01 => SpecOp::Mfc0 { rt, rd },
                    0x04 | 0x05 => SpecOp::Mtc0 { rt, rd },
                    _ => illegal,
                }
            }
        }
        // --- COP2 (CHERI, Table 1) -----------------------------------
        0x12 => decode_cop2(word),
        0x18 => alui(AluI::Daddi),
        0x19 => alui(AluI::Daddiu),
        0x20 => load(W::B, false),
        0x21 => load(W::H, false),
        0x23 => load(W::Wd, false),
        0x24 => load(W::B, true),
        0x25 => load(W::H, true),
        0x27 => load(W::Wd, true),
        0x28 => store(W::B),
        0x29 => store(W::H),
        0x2b => store(W::Wd),
        0x30 => SpecOp::LoadLinked { width: W::Wd, rt, base: rs, imm: simm },
        0x34 => SpecOp::LoadLinked { width: W::D, rt, base: rs, imm: simm },
        0x37 => load(W::D, false),
        0x38 => SpecOp::StoreCond { width: W::Wd, rt, base: rs, imm: simm },
        0x3c => SpecOp::StoreCond { width: W::D, rt, base: rs, imm: simm },
        0x3f => store(W::D),
        _ => illegal,
    }
}

/// The COP2 sub-table: `| 0x12 | sub(5) | r1(5) | r2(5) | r3(5) | imm6 |`,
/// with `CBTU`/`CBTS` using a 16-bit branch offset in the `r2..imm6`
/// span instead.
fn decode_cop2(word: u32) -> SpecOp {
    let sub = (word >> 21) & 0x1f;
    let r1 = ((word >> 16) & 0x1f) as u8;
    let r2 = ((word >> 11) & 0x1f) as u8;
    let r3 = ((word >> 6) & 0x1f) as u8;
    let raw6 = (word & 0x3f) as i8;
    let imm6 = if raw6 >= 32 { raw6 - 64 } else { raw6 };
    let offset = (word & 0xffff) as u16 as i16;

    let cload =
        |width, unsigned| SpecOp::CLoad { width, rd: r1, cb: r2, rt: r3, imm: imm6, unsigned };
    let cstore = |width| SpecOp::CStore { width, rs: r1, cb: r2, rt: r3, imm: imm6 };

    match sub {
        0..=3 => SpecOp::CGet { field: sub as u8, rd: r1, cb: r2 },
        4 => SpecOp::CGetPcc { rd: r1, cd: r2 },
        5 => SpecOp::CIncBase { cd: r1, cb: r2, rt: r3 },
        6 => SpecOp::CSetLen { cd: r1, cb: r2, rt: r3 },
        7 => SpecOp::CClearTag { cd: r1, cb: r2 },
        8 => SpecOp::CAndPerm { cd: r1, cb: r2, rt: r3 },
        9 => SpecOp::CToPtr { rd: r1, cb: r2, ct: r3 },
        10 => SpecOp::CFromPtr { cd: r1, cb: r2, rt: r3 },
        11 => SpecOp::CBranchTag { on_set: false, cb: r1, offset },
        12 => SpecOp::CBranchTag { on_set: true, cb: r1, offset },
        13 => SpecOp::Clc { cd: r1, cb: r2, rt: r3, imm: imm6 },
        14 => SpecOp::Csc { cs: r1, cb: r2, rt: r3, imm: imm6 },
        15 => cload(W::B, false),
        16 => cload(W::B, true),
        17 => cload(W::H, false),
        18 => cload(W::H, true),
        19 => cload(W::Wd, false),
        20 => cload(W::Wd, true),
        21 => cload(W::D, false),
        22 => cstore(W::B),
        23 => cstore(W::H),
        24 => cstore(W::Wd),
        25 => cstore(W::D),
        26 => SpecOp::Clld { rd: r1, cb: r2, rt: r3, imm: imm6 },
        27 => SpecOp::Cscd { rs: r1, cb: r2, rt: r3, imm: imm6 },
        28 => SpecOp::Cjr { cb: r1 },
        29 => SpecOp::Cjalr { cd: r1, cb: r2 },
        _ => SpecOp::Illegal { word },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nop() {
        assert_eq!(decode(0), SpecOp::Shift { kind: Sh::SllW, rd: 0, rt: 0, amount: 0 });
    }

    #[test]
    fn cop2_field_extraction() {
        // CLC c5, c6, $0, imm -1: sub 13, r1 5, r2 6, r3 0, imm6 0x3f.
        let word = (0x12 << 26) | (13 << 21) | (5 << 16) | (6 << 11) | 0x3f;
        assert_eq!(decode(word), SpecOp::Clc { cd: 5, cb: 6, rt: 0, imm: -1 });
    }

    #[test]
    fn unallocated_is_illegal() {
        assert!(matches!(decode(0x13 << 26), SpecOp::Illegal { .. }));
        assert!(matches!(decode(0x0000_0001), SpecOp::Illegal { .. }));
        assert!(matches!(decode((0x12 << 26) | (30 << 21)), SpecOp::Illegal { .. }));
    }
}
