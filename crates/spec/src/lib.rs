//! `cheri-spec` — an executable reference specification of the CHERI
//! capability semantics of the ISCA 2014 paper.
//!
//! This crate is the *oracle* half of the lockstep differential fuzzer
//! (see `specfuzz` in `cheri-bench`): a second, deliberately slow
//! implementation of the architecture written straight from the paper's
//! ISA description. It shares **no code** with the simulator — not the
//! decoder, not the capability arithmetic, not the byte layouts:
//!
//! * bounds checks are done in 128-bit arithmetic rather than the
//!   simulator's carefully restated 64-bit comparisons;
//! * the instruction decoder re-derives every encoding from the
//!   documented opcode tables, so an encode/decode bug in the simulator
//!   is *visible* rather than faithfully mirrored;
//! * the 256-bit (Figure 1) and compressed 128-bit (Low-Fat) memory
//!   images are re-serialised field by field;
//! * memory is a flat byte vector plus a one-`bool`-per-granule tag
//!   map — no caches, no timing, no predecoding, no snapshots.
//!
//! Anything the two models disagree on — a retired register value, a
//! trap cause, a CP0 side effect, a memory byte, a tag bit — is a bug
//! in one of them, and the fuzzer shrinks it to a replayable case.
//!
//! The [`seal`] module additionally models the paper's sealed-capability
//! mechanism (`CSealCode`/`CSealData`/`CUnseal`, Section 3.6), which the
//! simulator does not implement; it is specified and unit-tested here so
//! the object-capability story has an executable definition, but it is
//! not part of the lockstep comparison.

pub mod cap;
pub mod compress;
pub mod decode;
pub mod machine;
pub mod seal;

pub use cap::{perms, SpecCap};
pub use compress::{decompress128, pack128, representable128, required_alignment128, unpack128};
pub use decode::{decode, SpecOp};
pub use machine::{SpecEvent, SpecFormat, SpecMachine};
