//! The specification capability: Figure 1's 256-bit capability as plain
//! data, with the monotonic manipulation and checking rules of
//! Sections 3-4 written out in 128-bit arithmetic.
//!
//! Everything here is re-derived from the paper's text. In particular
//! the bounds rule is stated exactly as the paper states it — every
//! accessed byte must lie in `[base, base + length)`, evaluated without
//! overflow — rather than in the simulator's restated 64-bit form.

/// Permission bits (Table: "Memory capabilities"). The architectural
/// permission field is 31 bits; only the low five are given meaning.
pub mod perms {
    /// Permit load of data.
    pub const LOAD: u32 = 1 << 0;
    /// Permit store of data.
    pub const STORE: u32 = 1 << 1;
    /// Permit instruction fetch.
    pub const EXECUTE: u32 = 1 << 2;
    /// Permit load of a tagged capability.
    pub const LOAD_CAP: u32 = 1 << 3;
    /// Permit store of a tagged capability.
    pub const STORE_CAP: u32 = 1 << 4;
    /// Permit sealing with an otype inside this capability's bounds
    /// (Section 3.6; exercised only by the [`crate::seal`] model).
    pub const SEAL: u32 = 1 << 5;
    /// Every architecturally defined permission bit (31-bit field).
    pub const ALL: u32 = (1 << 31) - 1;
}

/// Capability exception codes, numerically identical to the CP2 cause
/// codes the simulator packs into `capcause` — the lockstep comparison
/// compares the packed register, so the spec speaks the same numbers.
pub mod exc {
    /// Bounds (length) violation.
    pub const LENGTH: u8 = 0x01;
    /// Tag clear on an operation that requires a valid capability.
    pub const TAG: u8 = 0x02;
    /// Seal state violation: sealing the sealed, or unsealing the
    /// unsealed (Section 3.6; exercised only by the [`crate::seal`]
    /// model).
    pub const SEAL: u8 = 0x03;
    /// Sealing without [`crate::cap::perms::SEAL`] on the authorizer.
    pub const PERMIT_SEAL: u8 = 0x16;
    /// An operation that would widen rights.
    pub const MONOTONICITY: u8 = 0x10;
    /// Fetch without `EXECUTE`.
    pub const PERMIT_EXECUTE: u8 = 0x11;
    /// Load without `LOAD`.
    pub const PERMIT_LOAD: u8 = 0x12;
    /// Store without `STORE`.
    pub const PERMIT_STORE: u8 = 0x13;
    /// Capability load without `LOAD_CAP`.
    pub const PERMIT_LOAD_CAP: u8 = 0x14;
    /// Capability store without `STORE_CAP`.
    pub const PERMIT_STORE_CAP: u8 = 0x15;
    /// Capability load through a page that strips tags.
    pub const TLB_NO_LOAD_CAP: u8 = 0x20;
    /// Capability store to a page that forbids tagged stores.
    pub const TLB_NO_STORE_CAP: u8 = 0x21;
    /// Misaligned capability access / unrepresentable 128-bit store.
    pub const ALIGNMENT: u8 = 0x22;
    /// `base + length` would pass 2^64.
    pub const ADDRESS_OVERFLOW: u8 = 0x23;
    /// The register number CP2 reports for a PCC (fetch) fault.
    pub const PCC_REG: u8 = 0xff;
}

/// Packs a capability cause the way CP2's cause register holds it:
/// exception code in bits 15:8, faulting register in bits 7:0.
#[must_use]
pub fn pack_cause(code: u8, reg: u8) -> u64 {
    (u64::from(code) << 8) | u64::from(reg)
}

/// A capability as the specification sees it: the tag plus the four
/// named fields of Figure 1. All fields are public plain data — the
/// spec has no invariants to hide; the *rules* live in the methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecCap {
    /// Validity tag (held out of band, in the tag memory).
    pub tag: bool,
    /// 31-bit permission vector.
    pub perms: u32,
    /// The 97-bit reserved field of Figure 1, of which this model (like
    /// the simulator) keeps 64 bits for experimentation.
    pub reserved: u64,
    /// Region base.
    pub base: u64,
    /// Region length in bytes.
    pub length: u64,
}

impl SpecCap {
    /// The almighty boot capability: every permission, the whole
    /// address space (length 2^64 - 1, as the simulator's reset state).
    #[must_use]
    pub fn almighty() -> SpecCap {
        SpecCap { tag: true, perms: perms::ALL, reserved: 0, base: 0, length: u64::MAX }
    }

    /// The null capability: all-zero, tag clear.
    #[must_use]
    pub fn null() -> SpecCap {
        SpecCap { tag: false, perms: 0, reserved: 0, base: 0, length: 0 }
    }

    /// One past the last addressable byte, as a 65-bit quantity.
    #[must_use]
    pub fn top(&self) -> u128 {
        u128::from(self.base) + u128::from(self.length)
    }

    // --- monotonic manipulation (Table 1) ----------------------------

    /// `CIncBase cd, cb, rt`: advance `base` by `delta`, shrinking
    /// `length` to match. A zero delta is a register copy and is
    /// permitted even on untagged values.
    ///
    /// # Errors
    ///
    /// `TAG` if untagged with a non-zero delta; `MONOTONICITY` if the
    /// delta passes the end of the region.
    pub fn inc_base(&self, delta: u64) -> Result<SpecCap, u8> {
        if !self.tag {
            return if delta == 0 { Ok(*self) } else { Err(exc::TAG) };
        }
        if u128::from(delta) > u128::from(self.length) {
            return Err(exc::MONOTONICITY);
        }
        Ok(SpecCap { base: self.base.wrapping_add(delta), length: self.length - delta, ..*self })
    }

    /// `CSetLen cd, cb, rt`: reduce `length`.
    ///
    /// # Errors
    ///
    /// `TAG` if untagged; `MONOTONICITY` if the new length is larger.
    pub fn set_len(&self, new_len: u64) -> Result<SpecCap, u8> {
        if !self.tag {
            return Err(exc::TAG);
        }
        if new_len > self.length {
            return Err(exc::MONOTONICITY);
        }
        Ok(SpecCap { length: new_len, ..*self })
    }

    /// `CAndPerm cd, cb, rt`: intersect the permission vector with a
    /// mask (only the 31 architectural bits participate).
    ///
    /// # Errors
    ///
    /// `TAG` if untagged.
    pub fn and_perm(&self, mask: u32) -> Result<SpecCap, u8> {
        if !self.tag {
            return Err(exc::TAG);
        }
        Ok(SpecCap { perms: self.perms & (mask & perms::ALL), ..*self })
    }

    /// `CClearTag cd, cb`: always succeeds; the result can be copied but
    /// never exercised.
    #[must_use]
    pub fn clear_tag(&self) -> SpecCap {
        SpecCap { tag: false, ..*self }
    }

    /// `CToPtr rd, cb, ct`: a C0-relative integer pointer; untagged
    /// capabilities become NULL.
    #[must_use]
    pub fn to_ptr(&self, c0: &SpecCap) -> u64 {
        if self.tag {
            self.base.wrapping_sub(c0.base)
        } else {
            0
        }
    }

    /// `CFromPtr cd, cb, rt`: the NULL-preserving inverse of
    /// [`SpecCap::to_ptr`].
    ///
    /// # Errors
    ///
    /// As [`SpecCap::inc_base`] for non-NULL pointers.
    pub fn from_ptr(c0: &SpecCap, ptr: u64) -> Result<SpecCap, u8> {
        if ptr == 0 {
            return Ok(SpecCap::null());
        }
        c0.inc_base(ptr)
    }

    // --- checks ------------------------------------------------------

    /// The paper's bounds rule, verbatim: every accessed byte must lie
    /// within `[base, base + length)`. Evaluated in 128-bit arithmetic
    /// so no restatement is needed.
    #[must_use]
    pub fn in_bounds(&self, addr: u64, size: u64) -> bool {
        let a = u128::from(addr);
        a >= u128::from(self.base) && a + u128::from(size) <= self.top()
    }

    /// Checks a `size`-byte data access at `addr` (load or store).
    ///
    /// # Errors
    ///
    /// `TAG`, then the missing permission, then `LENGTH` — in that
    /// priority order.
    pub fn check_data(&self, addr: u64, size: u64, store: bool) -> Result<(), u8> {
        if !self.tag {
            return Err(exc::TAG);
        }
        let (need, code) =
            if store { (perms::STORE, exc::PERMIT_STORE) } else { (perms::LOAD, exc::PERMIT_LOAD) };
        if self.perms & need == 0 {
            return Err(code);
        }
        if !self.in_bounds(addr, size) {
            return Err(exc::LENGTH);
        }
        Ok(())
    }

    /// Checks a whole-capability access (`CLC`/`CSC`) of one
    /// `granule`-byte in-memory capability at `addr`.
    ///
    /// # Errors
    ///
    /// `TAG`, the missing capability permission, `ALIGNMENT` (tags only
    /// cover aligned granules), then `LENGTH` — in that priority order.
    pub fn check_cap(&self, addr: u64, store: bool, granule: u64) -> Result<(), u8> {
        if !self.tag {
            return Err(exc::TAG);
        }
        let (need, code) = if store {
            (perms::STORE_CAP, exc::PERMIT_STORE_CAP)
        } else {
            (perms::LOAD_CAP, exc::PERMIT_LOAD_CAP)
        };
        if self.perms & need == 0 {
            return Err(code);
        }
        if !addr.is_multiple_of(granule) {
            return Err(exc::ALIGNMENT);
        }
        if !self.in_bounds(addr, granule) {
            return Err(exc::LENGTH);
        }
        Ok(())
    }

    /// Checks an instruction fetch at `pc` against this capability as
    /// PCC (Section 4.4).
    ///
    /// # Errors
    ///
    /// `TAG`, `PERMIT_EXECUTE`, then `LENGTH`.
    pub fn check_fetch(&self, pc: u64) -> Result<(), u8> {
        if !self.tag {
            return Err(exc::TAG);
        }
        if self.perms & perms::EXECUTE == 0 {
            return Err(exc::PERMIT_EXECUTE);
        }
        if !self.in_bounds(pc, 4) {
            return Err(exc::LENGTH);
        }
        Ok(())
    }

    // --- the 256-bit memory image (Figure 1) -------------------------

    /// Serialises the 256-bit body in the Figure 1 layout: four
    /// big-endian 64-bit words — `{perms:31, reserved[96:64]:33}`,
    /// `{reserved[63:32] zero-extended}`, `base`, `length` — written
    /// out byte by byte. The tag travels out of band.
    #[must_use]
    pub fn image256(&self) -> [u8; 32] {
        let word0 = (u64::from(self.perms & perms::ALL) << 33) | (self.reserved >> 32);
        let word1 = self.reserved & 0xffff_ffff;
        let mut out = [0u8; 32];
        for (slot, word) in [word0, word1, self.base, self.length].into_iter().enumerate() {
            for byte in 0..8 {
                out[slot * 8 + byte] = (word >> (56 - 8 * byte)) as u8;
            }
        }
        out
    }

    /// Rebuilds a capability from its 256-bit image plus the out-of-band
    /// tag bit.
    #[must_use]
    pub fn from_image256(image: &[u8; 32], tag: bool) -> SpecCap {
        let word = |slot: usize| -> u64 {
            image[slot * 8..slot * 8 + 8].iter().fold(0u64, |acc, b| (acc << 8) | u64::from(*b))
        };
        let (word0, word1) = (word(0), word(1));
        SpecCap {
            tag,
            perms: ((word0 >> 33) as u32) & perms::ALL,
            reserved: ((word0 & 0xffff_ffff) << 32) | (word1 & 0xffff_ffff),
            base: word(2),
            length: word(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_base_is_monotonic() {
        let c = SpecCap { tag: true, perms: perms::ALL, reserved: 0, base: 0x100, length: 0x80 };
        let d = c.inc_base(0x10).unwrap();
        assert_eq!((d.base, d.length), (0x110, 0x70));
        assert_eq!(c.inc_base(0x81), Err(exc::MONOTONICITY));
        assert_eq!(c.clear_tag().inc_base(1), Err(exc::TAG));
        // Zero-delta copy of an untagged value is allowed.
        assert_eq!(c.clear_tag().inc_base(0).unwrap(), c.clear_tag());
    }

    #[test]
    fn bounds_at_the_very_top_of_memory() {
        // The almighty capability has length 2^64 - 1, so the last byte
        // of the address space is *not* covered — exactly as in the
        // simulator's reset state.
        let c = SpecCap::almighty();
        assert!(c.check_data(u64::MAX - 7, 8, false).is_err());
        assert!(c.check_data(u64::MAX - 8, 8, false).is_ok());
    }

    #[test]
    fn image256_round_trips() {
        let c = SpecCap {
            tag: true,
            perms: 0b1_0111,
            reserved: 0xdead_beef_0123_4567,
            base: 0x8000,
            length: 0x4000,
        };
        assert_eq!(SpecCap::from_image256(&c.image256(), true), c);
    }
}
