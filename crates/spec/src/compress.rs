//! The compressed 128-bit (Low-Fat) capability format, re-specified.
//!
//! Section 4.1: a production implementation "would likely use a denser
//! representation — for example, 128-bits using 40-bit virtual
//! addresses or the Low-Fat Pointer approach". The format trades
//! granularity for space: the length is an 18-bit mantissa scaled by a
//! power-of-two exponent, and `base`/`length` must be multiples of that
//! block size.
//!
//! Bit layout (most significant bit first; big-endian in memory):
//!
//! ```text
//! [127:112] perms (16)  [111:106] exponent (6)  [105:88] mantissa (18)
//! [87:48]   base (40)   [47:0]    zero
//! ```
//!
//! This module re-derives everything from that description — the
//! alignment rule counts significant bits with a loop rather than
//! `leading_zeros`, and the (un)packing is written against the bit
//! positions above — so it shares no arithmetic with the simulator's
//! `Compressed128`.

use crate::cap::{perms, SpecCap};

/// Virtual-address width of the compressed format.
pub const VADDR_BITS: u32 = 40;
/// Length-mantissa width.
pub const MANTISSA_BITS: u32 = 18;

/// The block size (a power of two) that `base` and `length` must both
/// be multiples of for a region of `length` bytes to be representable:
/// 1 while the length fits in the mantissa, doubling with each further
/// significant bit.
#[must_use]
pub fn required_alignment128(length: u64) -> u64 {
    let mut significant = 0u32;
    let mut rest = length;
    while rest != 0 {
        significant += 1;
        rest >>= 1;
    }
    if significant <= MANTISSA_BITS {
        1
    } else {
        1u64 << (significant - MANTISSA_BITS)
    }
}

/// Whether a *tagged* capability's region is exactly representable in
/// the 128-bit format: it must fit under the 40-bit address ceiling and
/// honour [`required_alignment128`]. `CSC` of a tagged, unrepresentable
/// capability is an alignment fault (the capability-aware allocator is
/// expected to pad; Section 4.1).
#[must_use]
pub fn representable128(cap: &SpecCap) -> bool {
    let ceiling = 1u128 << VADDR_BITS;
    if u128::from(cap.base) >= ceiling || cap.top() > ceiling {
        return false;
    }
    let align = required_alignment128(cap.length);
    cap.base.is_multiple_of(align) && cap.length.is_multiple_of(align)
}

/// Packs a representable capability into its 16-byte big-endian memory
/// image. Permissions above bit 15 are dropped by compression; the
/// reserved field does not survive at all.
#[must_use]
pub fn pack128(cap: &SpecCap) -> [u8; 16] {
    debug_assert!(representable128(cap));
    let align = required_alignment128(cap.length);
    let mut exponent = 0u32;
    while (1u64 << exponent) < align {
        exponent += 1;
    }
    let mantissa = cap.length >> exponent;
    let hi: u64 = (u64::from(cap.perms as u16) << 48)
        | (u64::from(exponent & 0x3f) << 42)
        | ((mantissa & 0x3ffff) << 24)
        | (cap.base >> 16);
    let lo: u64 = (cap.base & 0xffff) << 48;
    let mut out = [0u8; 16];
    for (i, byte) in out.iter_mut().enumerate() {
        let word = if i < 8 { hi } else { lo };
        *byte = (word >> (56 - 8 * (i % 8))) as u8;
    }
    out
}

/// The raw fields of a 16-byte image: `(perms16, exponent, mantissa,
/// base)`. Any bit pattern unpacks — untagged memory holds arbitrary
/// bytes and `CLC` must load them (copyable, not dereferenceable).
#[must_use]
pub fn unpack128(image: &[u8; 16]) -> (u16, u8, u32, u64) {
    let word = |lo: usize| -> u64 {
        image[lo..lo + 8].iter().fold(0u64, |acc, b| (acc << 8) | u64::from(*b))
    };
    let (hi, lo) = (word(0), word(8));
    let perms16 = (hi >> 48) as u16;
    let exponent = ((hi >> 42) & 0x3f) as u8;
    let mantissa = ((hi >> 24) & 0x3ffff) as u32;
    let base = ((hi & 0xff_ffff) << 16) | (lo >> 48);
    (perms16, exponent, mantissa, base)
}

/// What a `CLC` materialises from a 16-byte image plus the out-of-band
/// tag: length is `mantissa << exponent` with 64-bit truncation (the
/// exponent is at most 63, and `base < 2^40` keeps `base + length` from
/// wrapping for any representable pattern), permissions are the
/// preserved low 16 bits, and the reserved field decompresses as zero.
#[must_use]
pub fn decompress128(image: &[u8; 16], tag: bool) -> SpecCap {
    let (perms16, exponent, mantissa, base) = unpack128(image);
    SpecCap {
        tag,
        perms: u32::from(perms16) & perms::ALL,
        reserved: 0,
        base,
        length: u64::from(mantissa) << exponent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base: u64, length: u64) -> SpecCap {
        SpecCap { tag: true, perms: perms::ALL, reserved: 0, base, length }
    }

    #[test]
    fn alignment_rule_boundaries() {
        assert_eq!(required_alignment128(0), 1);
        assert_eq!(required_alignment128((1 << 18) - 1), 1);
        assert_eq!(required_alignment128(1 << 18), 2);
        assert_eq!(required_alignment128((1 << 19) - 1), 2);
        assert_eq!(required_alignment128(1 << 19), 4);
    }

    #[test]
    fn representability_edges() {
        assert!(representable128(&region(0x8000, (1 << 18) - 1)));
        // One byte longer needs 2-byte alignment of both fields.
        assert!(!representable128(&region(0x8001, (1 << 18) + 2)));
        assert!(representable128(&region(0x8002, (1 << 18) + 2)));
        assert!(!representable128(&region(0x8002, (1 << 18) + 1)));
        // 40-bit ceiling, inclusive at the top.
        assert!(representable128(&region((1 << 40) - 32, 32)));
        assert!(!representable128(&region(1 << 40, 16)));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = region(0xaa_bbcc_dd00, 1 << 20);
        let back = decompress128(&pack128(&c), true);
        assert_eq!((back.base, back.length), (c.base, c.length));
        assert_eq!(back.perms, c.perms & 0xffff);
        assert_eq!(back.reserved, 0);
    }

    #[test]
    fn junk_bytes_always_unpack() {
        // Arbitrary memory must load without panicking; the worst case
        // is a maximal exponent, where the length truncates to 64 bits.
        let mut junk = [0xffu8; 16];
        let c = decompress128(&junk, false);
        assert!(!c.tag);
        junk[1] = 0xfc; // exponent field = 63
        let _ = decompress128(&junk, false);
    }
}
