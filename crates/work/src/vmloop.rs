//! `vmloop`: a guest bytecode VM, authored in the `cheri-cc` IR.
//!
//! The workload the Olden kernels never model: an interpreter dispatch
//! loop whose every step loads an opcode through a code pointer,
//! adjusts a stack pointer, and reads/writes VM state (operand stack,
//! locals, constant pool, VM heap) held behind four separate pointers.
//! Under the capability strategies each of those is a distinct
//! capability, so dispatch stresses capability loads at a density no
//! tree traversal reaches — the access pattern the CHERI
//! bytecode-interpreter work identifies as the divergent case.
//!
//! The VM is a 13-opcode stack machine. Each run executes three fixed
//! programs (iterative fibonacci, bubble sort over the VM heap, and a
//! multiply-accumulate string hash) `vm_iters` times, re-loading the
//! bytecode and re-seeding the heap every iteration, and prints one
//! accumulator checksum per program plus the total step count.

use cheri_cc::ir::build::{
    add, alloc, band, bxor, c, call, cmp, index, l, load, loadp, mul, shr, sub,
};
use cheri_cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};
use cheri_cc::strategy::PtrStrategy;
use cheri_olden::OldenParams;

// --- the bytecode ------------------------------------------------------

/// Stop; the value on top of the stack (if any) is the program result.
pub const HALT: i64 = 0;
/// Push `pool[arg]`.
pub const PUSHC: i64 = 1;
/// Push `locals[arg]`.
pub const LOAD: i64 = 2;
/// `locals[arg] = pop()`.
pub const STORE: i64 = 3;
/// `b = pop(); a = pop(); push(a + b)` (wrapping).
pub const ADD: i64 = 4;
/// `b = pop(); a = pop(); push(a - b)` (wrapping).
pub const SUB: i64 = 5;
/// `b = pop(); a = pop(); push(a * b)` (low 64 bits).
pub const MUL: i64 = 6;
/// `b = pop(); a = pop(); push(a < b)` (signed, 0/1).
pub const LT: i64 = 7;
/// `pc = arg`.
pub const JMP: i64 = 8;
/// `if pop() == 0 { pc = arg }`.
pub const JZ: i64 = 9;
/// Push a copy of the top of stack.
pub const DUP: i64 = 10;
/// `a = pop(); push(heap[a])`.
pub const HLOAD: i64 = 11;
/// `a = pop(); v = pop(); heap[a] = v` (operands pushed value-first).
pub const HSTORE: i64 = 12;

/// Code buffer capacity, in instructions (the largest program is the
/// bubble sort at well under half of this).
pub const CODE_MAX: u32 = 64;
/// Operand stack capacity, in cells.
pub const STACK_MAX: u32 = 64;
/// VM local-variable count.
pub const NLOCALS: u32 = 8;
/// Constant-pool capacity.
pub const NPOOL: u32 = 8;

/// An assembled guest program: `(opcode, argument)` pairs plus the
/// constant pool the loader installs alongside it.
pub struct BytecodeProgram {
    /// Diagnostic name.
    pub name: &'static str,
    /// Instructions in order; jump arguments are instruction indices.
    pub code: Vec<(i64, i64)>,
    /// Constant-pool values (`PUSHC` arguments index this).
    pub pool: Vec<i64>,
}

enum AsmArg {
    Imm(i64),
    Label(&'static str),
}

/// A label-resolving mini-assembler: emit ops forward, reference labels
/// in either direction, resolve at `finish`.
struct Asm {
    code: Vec<(i64, AsmArg)>,
    labels: std::collections::BTreeMap<&'static str, i64>,
}

impl Asm {
    fn new() -> Asm {
        Asm { code: Vec::new(), labels: std::collections::BTreeMap::new() }
    }

    fn op(&mut self, opcode: i64, arg: i64) {
        self.code.push((opcode, AsmArg::Imm(arg)));
    }

    fn jump(&mut self, opcode: i64, target: &'static str) {
        self.code.push((opcode, AsmArg::Label(target)));
    }

    fn label(&mut self, name: &'static str) {
        let here = self.code.len() as i64;
        assert!(self.labels.insert(name, here).is_none(), "duplicate label {name}");
    }

    fn finish(self, name: &'static str) -> BytecodeProgram {
        let code: Vec<(i64, i64)> = self
            .code
            .into_iter()
            .map(|(op, arg)| match arg {
                AsmArg::Imm(v) => (op, v),
                AsmArg::Label(t) => {
                    (op, *self.labels.get(t).unwrap_or_else(|| panic!("unknown label {t}")))
                }
            })
            .collect();
        assert!(code.len() <= CODE_MAX as usize, "{name}: program too long ({})", code.len());
        BytecodeProgram { name, code, pool: Vec::new() }
    }
}

/// Iterative fibonacci: `fib(n)` via two rolling locals.
/// Pool: `[0, 1, n]`.
#[must_use]
pub fn fib_program(n: u32) -> BytecodeProgram {
    let mut a = Asm::new();
    a.op(PUSHC, 0); // a = 0
    a.op(STORE, 0);
    a.op(PUSHC, 1); // b = 1
    a.op(STORE, 1);
    a.op(PUSHC, 0); // i = 0
    a.op(STORE, 2);
    a.label("loop");
    a.op(LOAD, 2); // while i < n
    a.op(PUSHC, 2);
    a.op(LT, 0);
    a.jump(JZ, "end");
    a.op(LOAD, 0); // t = a + b
    a.op(LOAD, 1);
    a.op(ADD, 0);
    a.op(STORE, 3);
    a.op(LOAD, 1); // a = b
    a.op(STORE, 0);
    a.op(LOAD, 3); // b = t
    a.op(STORE, 1);
    a.op(LOAD, 2); // i += 1
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(STORE, 2);
    a.jump(JMP, "loop");
    a.label("end");
    a.op(LOAD, 0); // result: a == fib(n)
    a.op(HALT, 0);
    let mut p = a.finish("fib");
    p.pool = vec![0, 1, i64::from(n)];
    p
}

/// Bubble sort over `heap[0..m]`, ascending, in place; the result mixes
/// the minimum, median, and maximum so any misplacement changes it.
/// Pool: `[0, 1, m, m - 1, m / 2]`.
#[must_use]
pub fn sort_program(m: u32) -> BytecodeProgram {
    let m = i64::from(m.max(2));
    let mut a = Asm::new();
    a.op(PUSHC, 0); // i = 0
    a.op(STORE, 0);
    a.label("outer");
    a.op(LOAD, 0); // while i < m - 1
    a.op(PUSHC, 3);
    a.op(LT, 0);
    a.jump(JZ, "done");
    a.op(PUSHC, 0); // j = 0
    a.op(STORE, 1);
    a.label("inner");
    a.op(LOAD, 1); // while j < (m - 1) - i
    a.op(PUSHC, 3);
    a.op(LOAD, 0);
    a.op(SUB, 0);
    a.op(LT, 0);
    a.jump(JZ, "iend");
    a.op(LOAD, 1); // x = heap[j]
    a.op(HLOAD, 0);
    a.op(STORE, 2);
    a.op(LOAD, 1); // y = heap[j + 1]
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(HLOAD, 0);
    a.op(STORE, 3);
    a.op(LOAD, 3); // if y < x: swap
    a.op(LOAD, 2);
    a.op(LT, 0);
    a.jump(JZ, "noswap");
    a.op(LOAD, 3); // heap[j] = y
    a.op(LOAD, 1);
    a.op(HSTORE, 0);
    a.op(LOAD, 2); // heap[j + 1] = x
    a.op(LOAD, 1);
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(HSTORE, 0);
    a.label("noswap");
    a.op(LOAD, 1); // j += 1
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(STORE, 1);
    a.jump(JMP, "inner");
    a.label("iend");
    a.op(LOAD, 0); // i += 1
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(STORE, 0);
    a.jump(JMP, "outer");
    a.label("done");
    a.op(PUSHC, 0); // heap[0] + heap[m/2] * heap[m-1]
    a.op(HLOAD, 0);
    a.op(PUSHC, 4);
    a.op(HLOAD, 0);
    a.op(PUSHC, 3);
    a.op(HLOAD, 0);
    a.op(MUL, 0);
    a.op(ADD, 0);
    a.op(HALT, 0);
    let mut p = a.finish("sort");
    p.pool = vec![0, 1, m, m - 1, m / 2];
    p
}

/// Multiply-accumulate hash of `heap[0..k]`: `h = h * 31 + heap[i]`.
/// Pool: `[0, 1, k, 31]`.
#[must_use]
pub fn hash_program(k: u32) -> BytecodeProgram {
    let k = i64::from(k.max(1));
    let mut a = Asm::new();
    a.op(PUSHC, 0); // i = 0
    a.op(STORE, 0);
    a.op(PUSHC, 0); // h = 0
    a.op(STORE, 1);
    a.label("loop");
    a.op(LOAD, 0); // while i < k
    a.op(PUSHC, 2);
    a.op(LT, 0);
    a.jump(JZ, "end");
    a.op(LOAD, 1); // h = h * 31 + heap[i]
    a.op(PUSHC, 3);
    a.op(MUL, 0);
    a.op(LOAD, 0);
    a.op(HLOAD, 0);
    a.op(ADD, 0);
    a.op(STORE, 1);
    a.op(LOAD, 0); // i += 1
    a.op(PUSHC, 1);
    a.op(ADD, 0);
    a.op(STORE, 0);
    a.jump(JMP, "loop");
    a.label("end");
    a.op(LOAD, 1);
    a.op(HALT, 0);
    let mut p = a.finish("hash");
    p.pool = vec![0, 1, k, 31];
    p
}

/// The three programs at the given problem size, in execution order.
#[must_use]
pub fn programs(p: &OldenParams) -> [BytecodeProgram; 3] {
    [fib_program(p.vm_fib), sort_program(p.vm_sort), hash_program(p.vm_hash)]
}

/// The heap-seeding mixer, shared verbatim (same constants, same
/// operation order) by the IR `reseed` function and the native twin.
#[must_use]
pub fn mix(i: i64, mask: i64) -> i64 {
    let mut t = i.wrapping_mul(2_654_435_761);
    t ^= ((t as u64) >> 13) as i64;
    t = t.wrapping_mul(97);
    t & mask
}

/// VM heap size in cells: enough for the largest heap-using program.
#[must_use]
pub fn heap_cells(p: &OldenParams) -> u32 {
    p.vm_sort.max(2).max(p.vm_hash.max(1))
}

// --- the IR module -----------------------------------------------------

/// Struct ids.
const CELL: usize = 0;
const OPS: usize = 1;
const VM: usize = 2;

/// `cell { v }`.
const V: usize = 0;
/// `op { code, arg }`.
const CODE: usize = 0;
const ARG: usize = 1;
/// `vm { pc, sp, steps, code*, stack*, locals*, pool*, heap* }`.
const PC: usize = 0;
const SP: usize = 1;
const STEPS: usize = 2;
const FCODE: usize = 3;
const FSTACK: usize = 4;
const FLOCALS: usize = 5;
const FPOOL: usize = 6;
const FHEAP: usize = 7;

/// Function ids.
const INTERP: usize = 0;
const RESEED: usize = 1;
const RESET: usize = 2;
const LOAD_FIB: usize = 3;
const LOAD_SORT: usize = 4;
const LOAD_HASH: usize = 5;
const MAIN: usize = 6;

/// Builds an `if op == k { ... } else if ...` dispatch ladder.
fn dispatch(scrutinee: usize, cases: Vec<(i64, Vec<Stmt>)>, fallback: Vec<Stmt>) -> Stmt {
    let mut els = fallback;
    for (opcode, body) in cases.into_iter().rev() {
        els = vec![Stmt::If { cond: cmp(CmpOp::Eq, l(scrutinee), c(opcode)), then: body, els }];
    }
    match els.into_iter().next() {
        Some(s) => s,
        None => unreachable!("dispatch with no cases"),
    }
}

/// A program loader: straight-line stores of the code image and
/// constant pool (its store traffic is part of the workload — real VMs
/// write their bytecode before running it). Params: `(code, pool)`.
fn loader_fn(name: &'static str, prog: &BytecodeProgram) -> FuncDef {
    assert!(prog.pool.len() <= NPOOL as usize, "{name}: pool too large");
    let mut body = Vec::new();
    for (i, &(op, arg)) in prog.code.iter().enumerate() {
        let at = i as i64;
        body.push(Stmt::Store {
            ptr: index(l(0), OPS, c(at)),
            strukt: OPS,
            field: CODE,
            value: c(op),
        });
        body.push(Stmt::Store {
            ptr: index(l(0), OPS, c(at)),
            strukt: OPS,
            field: ARG,
            value: c(arg),
        });
    }
    for (i, &v) in prog.pool.iter().enumerate() {
        body.push(Stmt::Store {
            ptr: index(l(1), CELL, c(i as i64)),
            strukt: CELL,
            field: V,
            value: c(v),
        });
    }
    FuncDef { name, params: 2, ret: None, locals: vec![Ty::ptr(OPS), Ty::ptr(CELL)], body }
}

/// The dispatch loop. Param: `(vm)`; returns the program result (top of
/// stack at `HALT`, or 0 on an empty stack) and accumulates the step
/// count into `vm.steps`.
#[allow(clippy::too_many_lines)]
fn interp_fn() -> FuncDef {
    // Locals: 0 vm, 1 code, 2 stack, 3 locals, 4 pool, 5 heap,
    // 6 pc, 7 sp, 8 steps, 9 running, 10 op, 11 arg, 12 a, 13 b,
    // 14 ip, 15 cp, 16 result.
    let locals = vec![
        Ty::ptr(VM),
        Ty::ptr(OPS),
        Ty::ptr(CELL),
        Ty::ptr(CELL),
        Ty::ptr(CELL),
        Ty::ptr(CELL),
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::I64,
        Ty::ptr(OPS),
        Ty::ptr(CELL),
        Ty::I64,
    ];

    // push(l(12)): stack[sp] = a; sp += 1.
    let push_a = |body: &mut Vec<Stmt>| {
        body.push(Stmt::Store {
            ptr: index(l(2), CELL, l(7)),
            strukt: CELL,
            field: V,
            value: l(12),
        });
        body.push(Stmt::Let(7, add(l(7), c(1))));
    };
    // l(12) = pop(): sp -= 1; a = stack[sp].
    let pop_a = |body: &mut Vec<Stmt>| {
        body.push(Stmt::Let(7, sub(l(7), c(1))));
        body.push(Stmt::Let(15, index(l(2), CELL, l(7))));
        body.push(Stmt::Let(12, load(l(15), CELL, V)));
    };

    // Binary ops: b = pop(); a = stack[sp-1]; stack[sp-1] = a ⊕ b.
    let binop = |result: cheri_cc::ir::Expr| -> Vec<Stmt> {
        vec![
            Stmt::Let(7, sub(l(7), c(1))),
            Stmt::Let(15, index(l(2), CELL, l(7))),
            Stmt::Let(13, load(l(15), CELL, V)),
            Stmt::Let(15, index(l(2), CELL, sub(l(7), c(1)))),
            Stmt::Let(12, load(l(15), CELL, V)),
            Stmt::Store { ptr: l(15), strukt: CELL, field: V, value: result },
        ]
    };

    let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
    cases.push((HALT, vec![Stmt::Let(9, c(0))]));
    {
        // PUSHC: push(pool[arg]).
        let mut b =
            vec![Stmt::Let(15, index(l(4), CELL, l(11))), Stmt::Let(12, load(l(15), CELL, V))];
        push_a(&mut b);
        cases.push((PUSHC, b));
    }
    {
        // LOAD: push(locals[arg]).
        let mut b =
            vec![Stmt::Let(15, index(l(3), CELL, l(11))), Stmt::Let(12, load(l(15), CELL, V))];
        push_a(&mut b);
        cases.push((LOAD, b));
    }
    {
        // STORE: locals[arg] = pop().
        let mut b = Vec::new();
        pop_a(&mut b);
        b.push(Stmt::Store { ptr: index(l(3), CELL, l(11)), strukt: CELL, field: V, value: l(12) });
        cases.push((STORE, b));
    }
    cases.push((ADD, binop(add(l(12), l(13)))));
    cases.push((SUB, binop(sub(l(12), l(13)))));
    cases.push((MUL, binop(mul(l(12), l(13)))));
    cases.push((LT, binop(cmp(CmpOp::Lt, l(12), l(13)))));
    cases.push((JMP, vec![Stmt::Let(6, l(11))]));
    {
        // JZ: if pop() == 0 { pc = arg }.
        let mut b = Vec::new();
        pop_a(&mut b);
        b.push(Stmt::If {
            cond: cmp(CmpOp::Eq, l(12), c(0)),
            then: vec![Stmt::Let(6, l(11))],
            els: vec![],
        });
        cases.push((JZ, b));
    }
    {
        // DUP: push(stack[sp-1]).
        let mut b = vec![
            Stmt::Let(15, index(l(2), CELL, sub(l(7), c(1)))),
            Stmt::Let(12, load(l(15), CELL, V)),
        ];
        push_a(&mut b);
        cases.push((DUP, b));
    }
    {
        // HLOAD: stack[sp-1] = heap[stack[sp-1]].
        let b = vec![
            Stmt::Let(15, index(l(2), CELL, sub(l(7), c(1)))),
            Stmt::Let(12, load(l(15), CELL, V)),
            Stmt::Let(15, index(l(5), CELL, l(12))),
            Stmt::Let(12, load(l(15), CELL, V)),
            Stmt::Let(15, index(l(2), CELL, sub(l(7), c(1)))),
            Stmt::Store { ptr: l(15), strukt: CELL, field: V, value: l(12) },
        ];
        cases.push((HLOAD, b));
    }
    {
        // HSTORE: a = pop() (address); b = pop() (value); heap[a] = b.
        let mut b = Vec::new();
        pop_a(&mut b);
        b.push(Stmt::Let(7, sub(l(7), c(1))));
        b.push(Stmt::Let(15, index(l(2), CELL, l(7))));
        b.push(Stmt::Let(13, load(l(15), CELL, V)));
        b.push(Stmt::Store { ptr: index(l(5), CELL, l(12)), strukt: CELL, field: V, value: l(13) });
        cases.push((HSTORE, b));
    }

    let mut loop_body = vec![
        Stmt::Let(14, index(l(1), OPS, l(6))),
        Stmt::Let(10, load(l(14), OPS, CODE)),
        Stmt::Let(11, load(l(14), OPS, ARG)),
        Stmt::Let(6, add(l(6), c(1))),
        Stmt::Let(8, add(l(8), c(1))),
    ];
    // Fallback: unknown opcode stops the VM (defensive; the assembler
    // cannot emit one).
    loop_body.push(dispatch(10, cases, vec![Stmt::Let(9, c(0))]));

    let body = vec![
        Stmt::Let(1, loadp(l(0), VM, FCODE)),
        Stmt::Let(2, loadp(l(0), VM, FSTACK)),
        Stmt::Let(3, loadp(l(0), VM, FLOCALS)),
        Stmt::Let(4, loadp(l(0), VM, FPOOL)),
        Stmt::Let(5, loadp(l(0), VM, FHEAP)),
        Stmt::Let(6, load(l(0), VM, PC)),
        Stmt::Let(7, load(l(0), VM, SP)),
        Stmt::Let(8, c(0)),
        Stmt::Let(9, c(1)),
        Stmt::While { cond: cmp(CmpOp::Ne, l(9), c(0)), body: loop_body },
        Stmt::Store { ptr: l(0), strukt: VM, field: PC, value: l(6) },
        Stmt::Store { ptr: l(0), strukt: VM, field: SP, value: l(7) },
        Stmt::Store {
            ptr: l(0),
            strukt: VM,
            field: STEPS,
            value: add(load(l(0), VM, STEPS), l(8)),
        },
        Stmt::If {
            cond: cmp(CmpOp::Gt, l(7), c(0)),
            then: vec![
                Stmt::Let(15, index(l(2), CELL, sub(l(7), c(1)))),
                Stmt::Let(16, load(l(15), CELL, V)),
            ],
            els: vec![Stmt::Let(16, c(0))],
        },
        Stmt::Return(Some(l(16))),
    ];

    FuncDef { name: "interp", params: 1, ret: Some(Ty::I64), locals, body }
}

/// `reseed(heap, count, salt, mask)`: `heap[i] = mix(salt + i) & mask`
/// — the IR transcription of [`mix`].
fn reseed_fn() -> FuncDef {
    // Locals: 0 heap, 1 count, 2 salt, 3 mask, 4 i, 5 t.
    let body = vec![
        Stmt::Let(4, c(0)),
        Stmt::While {
            cond: cmp(CmpOp::Lt, l(4), l(1)),
            body: vec![
                Stmt::Let(5, add(l(2), l(4))),
                Stmt::Let(5, mul(l(5), c(2_654_435_761))),
                Stmt::Let(5, bxor(l(5), shr(l(5), c(13)))),
                Stmt::Let(5, band(mul(l(5), c(97)), l(3))),
                Stmt::Store { ptr: index(l(0), CELL, l(4)), strukt: CELL, field: V, value: l(5) },
                Stmt::Let(4, add(l(4), c(1))),
            ],
        },
    ];
    FuncDef {
        name: "reseed",
        params: 4,
        ret: None,
        locals: vec![Ty::ptr(CELL), Ty::I64, Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        body,
    }
}

/// `reset(vm)`: rewind `pc` and `sp` for the next program.
fn reset_fn() -> FuncDef {
    let body = vec![
        Stmt::Store { ptr: l(0), strukt: VM, field: PC, value: c(0) },
        Stmt::Store { ptr: l(0), strukt: VM, field: SP, value: c(0) },
    ];
    FuncDef { name: "reset", params: 1, ret: None, locals: vec![Ty::ptr(VM)], body }
}

/// Builds the `vmloop` module at the given problem size.
#[must_use]
pub fn module(p: &OldenParams) -> Module {
    let [fib, sort, hash] = programs(p);
    let iters = i64::from(p.vm_iters.max(1));
    let sort_m = i64::from(p.vm_sort.max(2));
    let hash_k = i64::from(p.vm_hash.max(1));
    let cells = i64::from(heap_cells(p));

    // Locals: 0 vm, 1 code, 2 stack, 3 locals, 4 pool, 5 heap,
    // 6 iter, 7 r, 8 acc_fib, 9 acc_sort, 10 acc_hash, 11 salt, 12 steps.
    let run_program = |loader: usize, acc: usize, reseed: Option<(i64, i64, i64, i64)>| {
        let mut s = vec![Stmt::Expr(call(loader, vec![l(1), l(4)]))];
        if let Some((count, smul, sadd, mask)) = reseed {
            s.push(Stmt::Let(11, add(mul(l(6), c(smul)), c(sadd))));
            s.push(Stmt::Expr(call(RESEED, vec![l(5), c(count), l(11), c(mask)])));
        }
        s.push(Stmt::Expr(call(RESET, vec![l(0)])));
        s.push(Stmt::Let(7, call(INTERP, vec![l(0)])));
        s.push(Stmt::Let(acc, add(mul(l(acc), c(33)), l(7))));
        s
    };

    let mut loop_body = Vec::new();
    loop_body.extend(run_program(LOAD_FIB, 8, None));
    loop_body.extend(run_program(LOAD_SORT, 9, Some((sort_m, 977, 13, 0xffff))));
    loop_body.extend(run_program(LOAD_HASH, 10, Some((hash_k, 353, 7, 0x7f))));
    loop_body.push(Stmt::Let(6, add(l(6), c(1))));

    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        locals: vec![
            Ty::ptr(VM),
            Ty::ptr(OPS),
            Ty::ptr(CELL),
            Ty::ptr(CELL),
            Ty::ptr(CELL),
            Ty::ptr(CELL),
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
        ],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(0, alloc(VM, c(1))),
            Stmt::Let(1, alloc(OPS, c(i64::from(CODE_MAX)))),
            Stmt::Let(2, alloc(CELL, c(i64::from(STACK_MAX)))),
            Stmt::Let(3, alloc(CELL, c(i64::from(NLOCALS)))),
            Stmt::Let(4, alloc(CELL, c(i64::from(NPOOL)))),
            Stmt::Let(5, alloc(CELL, c(cells))),
            Stmt::StorePtr { ptr: l(0), strukt: VM, field: FCODE, value: l(1) },
            Stmt::StorePtr { ptr: l(0), strukt: VM, field: FSTACK, value: l(2) },
            Stmt::StorePtr { ptr: l(0), strukt: VM, field: FLOCALS, value: l(3) },
            Stmt::StorePtr { ptr: l(0), strukt: VM, field: FPOOL, value: l(4) },
            Stmt::StorePtr { ptr: l(0), strukt: VM, field: FHEAP, value: l(5) },
            Stmt::Store { ptr: l(0), strukt: VM, field: STEPS, value: c(0) },
            Stmt::Phase(2),
            Stmt::Let(6, c(0)),
            Stmt::Let(8, c(0)),
            Stmt::Let(9, c(0)),
            Stmt::Let(10, c(0)),
            Stmt::While { cond: cmp(CmpOp::Lt, l(6), c(iters)), body: loop_body },
            Stmt::Phase(3),
            Stmt::Print(l(8)),
            Stmt::Print(l(9)),
            Stmt::Print(l(10)),
            Stmt::Let(12, load(l(0), VM, STEPS)),
            Stmt::Print(l(12)),
            Stmt::Return(Some(l(12))),
        ],
    };

    let funcs = vec![
        interp_fn(),
        reseed_fn(),
        reset_fn(),
        loader_fn("load_fib", &fib),
        loader_fn("load_sort", &sort),
        loader_fn("load_hash", &hash),
        main_fn,
    ];
    Module {
        structs: vec![
            StructDef { name: "cell", fields: vec![Ty::I64] },
            StructDef { name: "op", fields: vec![Ty::I64, Ty::I64] },
            StructDef {
                name: "vm",
                fields: vec![
                    Ty::I64,
                    Ty::I64,
                    Ty::I64,
                    Ty::ptr(OPS),
                    Ty::ptr(CELL),
                    Ty::ptr(CELL),
                    Ty::ptr(CELL),
                    Ty::ptr(CELL),
                ],
            },
        ],
        funcs,
        entry: MAIN,
    }
}

/// Physical memory needed: the six fixed allocations plus headroom,
/// with worst-case per-slot rounding under fat/capability strategies.
#[must_use]
pub fn mem_needed(p: &OldenParams, strategy: &dyn PtrStrategy) -> usize {
    let ptr = strategy.ptr_size();
    let cells = u64::from(heap_cells(p)) + u64::from(STACK_MAX + NLOCALS + NPOOL);
    let heap = cells * 32 + u64::from(CODE_MAX) * 32 + (24 + 5 * ptr).div_ceil(32) * 32;
    usize::try_from(heap.div_ceil(1 << 20) + 8).expect("sane size") << 20
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check, Limits};
    use cheri_cc::strategy::LegacyPtr;

    fn host_fib(n: u32) -> i64 {
        let (mut a, mut b) = (0i64, 1i64);
        for _ in 0..n {
            let t = a.wrapping_add(b);
            a = b;
            b = t;
        }
        a
    }

    #[test]
    fn module_checks() {
        let m = module(&OldenParams::scaled());
        check(&m, Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    #[test]
    fn programs_fit_the_buffers() {
        let p = OldenParams::paper();
        for prog in programs(&p) {
            assert!(prog.code.len() <= CODE_MAX as usize, "{}", prog.name);
            assert!(prog.pool.len() <= NPOOL as usize, "{}", prog.name);
            assert!(prog.code.iter().any(|&(op, _)| op == HALT), "{} never halts", prog.name);
        }
    }

    #[test]
    fn fib_checksum_matches_host_arithmetic() {
        let p = OldenParams::scaled();
        let m = module(&p);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        let mut acc = 0i64;
        for _ in 0..p.vm_iters {
            acc = acc.wrapping_mul(33).wrapping_add(host_fib(p.vm_fib));
        }
        assert_eq!(out.prints[0], acc as u64, "fib accumulator");
        assert!(out.prints[3] > 0, "step counter empty");
        assert_eq!(out.exit_value(), Some(out.prints[3]));
    }

    #[test]
    fn sort_checksum_matches_host_sort() {
        let p = OldenParams::scaled();
        let m = module(&p);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        let sm = p.vm_sort.max(2) as i64;
        let mut acc = 0i64;
        for iter in 0..i64::from(p.vm_iters) {
            let salt = iter.wrapping_mul(977).wrapping_add(13);
            let mut vals: Vec<i64> = (0..sm).map(|j| mix(salt + j, 0xffff)).collect();
            vals.sort_unstable();
            let r =
                vals[0].wrapping_add(vals[(sm / 2) as usize].wrapping_mul(vals[(sm - 1) as usize]));
            acc = acc.wrapping_mul(33).wrapping_add(r);
        }
        assert_eq!(out.prints[1], acc as u64, "sort accumulator");
    }
}
