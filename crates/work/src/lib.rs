//! Runtime-system guest workloads and the workload registry.
//!
//! The four Olden kernels chase trees; real language runtimes stress
//! different pointer paths. This crate adds the two workloads the
//! bytecode-interpreter and CRuby-porting CHERI papers identify as the
//! interesting cases — `vmloop` (a guest bytecode VM whose dispatch
//! loop and VM state live behind pointers) and `allocstress` (a
//! free-list allocator with slot reuse, so capabilities are constantly
//! re-derived over recycled memory) — and the [`Workload`] registry
//! that presents all six workloads to every harness through one table:
//! the sweep matrix, the figure binaries, the profiler, the snapshot
//! pool, and `cheri-serve` all iterate [`Workload::ALL`] and index
//! [`REGISTRY`], so adding a workload is one entry here, not N match
//! arms scattered across binaries.

pub mod allocstress;
pub mod native;
pub mod vmloop;

use beri_sim::machine::CapFormat;
use beri_sim::MachineConfig;
use cheri_cc::ir::Module;
use cheri_cc::strategy::PtrStrategy;
use cheri_olden::dsl::DslBench;
use cheri_olden::OldenParams;

/// One guest workload: the four Olden kernels plus the two
/// runtime-system workloads defined in this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Bitonic sort over a perfect binary tree (Olden).
    Bisort,
    /// Minimum spanning tree with per-vertex hash tables (Olden).
    Mst,
    /// Recursive binary-tree summation (Olden).
    Treeadd,
    /// Quadtree image perimeter (Olden).
    Perimeter,
    /// Guest bytecode VM: dispatch loop + pointer-held VM state.
    Vmloop,
    /// Free-list allocator churn with slot reuse and pointer scans.
    Allocstress,
}

/// Everything a harness needs to run a workload, looked up by
/// [`Workload::info`]. One row per workload in [`REGISTRY`].
pub struct WorkloadInfo {
    /// The canonical name (report keys, CLI flags, wire protocol).
    pub name: &'static str,
    /// Builds the IR module at the given problem size.
    pub module: fn(&OldenParams) -> Module,
    /// Rough physical-memory requirement under the strategy.
    pub mem_needed: fn(&OldenParams, &dyn PtrStrategy) -> usize,
    /// The Figure-5-style heap-size sweep points: (x-axis label,
    /// params) pairs whose baseline heaps span small → large.
    pub sweep_points: fn() -> Vec<(u32, OldenParams)>,
}

/// The workload table, in canonical report order ([`Workload::ALL`]
/// indexes it by discriminant).
pub const REGISTRY: [WorkloadInfo; 6] = [
    WorkloadInfo {
        name: "bisort",
        module: |p| DslBench::Bisort.module(p),
        mem_needed: |p, s| DslBench::Bisort.mem_needed(p, s),
        sweep_points: || {
            let base = OldenParams::scaled();
            (7..=14).map(|d| (d, OldenParams { bisort_log2: d, ..base })).collect()
        },
    },
    WorkloadInfo {
        name: "mst",
        module: |p| DslBench::Mst.module(p),
        mem_needed: |p, s| DslBench::Mst.mem_needed(p, s),
        sweep_points: || {
            let base = OldenParams::scaled();
            [16u32, 32, 64, 128, 256, 512, 1024]
                .iter()
                .map(|&n| (n, OldenParams { mst_vertices: n, ..base }))
                .collect()
        },
    },
    WorkloadInfo {
        name: "treeadd",
        module: |p| DslBench::Treeadd.module(p),
        mem_needed: |p, s| DslBench::Treeadd.mem_needed(p, s),
        sweep_points: || {
            let base = OldenParams::scaled();
            (8..=16).map(|d| (d, base.with_treeadd_depth(d))).collect()
        },
    },
    WorkloadInfo {
        name: "perimeter",
        module: |p| DslBench::Perimeter.module(p),
        mem_needed: |p, s| DslBench::Perimeter.mem_needed(p, s),
        sweep_points: || {
            let base = OldenParams::scaled();
            (7..=12).map(|d| (d, OldenParams { perimeter_levels: d, ..base })).collect()
        },
    },
    WorkloadInfo {
        name: "vmloop",
        module: vmloop::module,
        mem_needed: vmloop::mem_needed,
        sweep_points: || {
            let base = OldenParams::scaled();
            [16u32, 32, 64, 128, 256, 512]
                .iter()
                .map(|&n| (n, OldenParams { vm_sort: n, ..base }))
                .collect()
        },
    },
    WorkloadInfo {
        name: "allocstress",
        module: allocstress::module,
        mem_needed: allocstress::mem_needed,
        sweep_points: || {
            let base = OldenParams::scaled();
            [128u32, 256, 512, 1024, 2048, 4096]
                .iter()
                .map(|&n| (n, OldenParams { alloc_slots: n, alloc_roots: n / 16, ..base }))
                .collect()
        },
    },
];

impl Workload {
    /// Every workload, in canonical report order (Olden four first, in
    /// the paper's Figure 4 order, then the runtime-system pair).
    pub const ALL: [Workload; 6] = [
        Workload::Bisort,
        Workload::Mst,
        Workload::Treeadd,
        Workload::Perimeter,
        Workload::Vmloop,
        Workload::Allocstress,
    ];

    /// This workload's registry row.
    #[must_use]
    pub fn info(self) -> &'static WorkloadInfo {
        &REGISTRY[self as usize]
    }

    /// The canonical name.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Resolves a workload by its canonical name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == name)
    }

    /// Builds the IR module at the given problem size.
    #[must_use]
    pub fn module(self, p: &OldenParams) -> Module {
        (self.info().module)(p)
    }

    /// A rough physical-memory requirement for the workload under the
    /// given strategy (heap + headroom), used to size the machine.
    #[must_use]
    pub fn mem_needed(self, p: &OldenParams, strategy: &dyn PtrStrategy) -> usize {
        (self.info().mem_needed)(p, strategy)
    }

    /// The heap-size sweep points (Figure 5 x-axis label, params).
    #[must_use]
    pub fn sweep_points(self) -> Vec<(u32, OldenParams)> {
        (self.info().sweep_points)()
    }
}

/// Builds a machine configuration sized for the workload with the
/// capability format matching the strategy — the registry analogue of
/// `cheri_olden::dsl::machine_config`.
#[must_use]
pub fn machine_config(
    workload: Workload,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
) -> MachineConfig {
    MachineConfig {
        mem_bytes: workload.mem_needed(params, strategy),
        cap_format: if strategy.ptr_size() == 16 { CapFormat::C128 } else { CapFormat::C256 },
        ..MachineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::strategy::{CapPtr, LegacyPtr};

    #[test]
    fn registry_order_matches_discriminants() {
        for w in Workload::ALL {
            assert_eq!(REGISTRY[w as usize].name, w.name());
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("nosuch"), None);
    }

    #[test]
    fn olden_rows_delegate_to_dsl_bench() {
        let p = OldenParams::scaled();
        for (w, b) in [
            (Workload::Bisort, DslBench::Bisort),
            (Workload::Mst, DslBench::Mst),
            (Workload::Treeadd, DslBench::Treeadd),
            (Workload::Perimeter, DslBench::Perimeter),
        ] {
            assert_eq!(w.name(), b.name());
            assert_eq!(w.mem_needed(&p, &LegacyPtr), b.mem_needed(&p, &LegacyPtr));
            assert_eq!(w.module(&p).funcs.len(), b.module(&p).funcs.len());
        }
    }

    #[test]
    fn every_workload_has_enough_sweep_points() {
        for w in Workload::ALL {
            let points = w.sweep_points();
            assert!(points.len() >= 6, "{}: too few sweep points", w.name());
        }
    }

    #[test]
    fn machine_config_tracks_strategy_format() {
        use beri_sim::machine::CapFormat;
        let p = OldenParams::scaled();
        let cfg = machine_config(Workload::Vmloop, &p, &CapPtr::c128());
        assert_eq!(cfg.cap_format, CapFormat::C128);
        let cfg = machine_config(Workload::Vmloop, &p, &CapPtr::c256());
        assert_eq!(cfg.cap_format, CapFormat::C256);
        assert!(cfg.mem_bytes >= 8 << 20);
    }
}
