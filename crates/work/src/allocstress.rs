//! `allocstress`: a guest free-list allocator under churn, authored in
//! the `cheri-cc` IR.
//!
//! Models the allocator-level behaviour the CRuby-on-CHERI port
//! catalogs: a fixed arena threaded into a free list, `salloc`/`sfree`
//! that pop and push list heads (every allocation re-derives a
//! capability from the list), pointer scrubbing on free (storing null
//! over the dead slot's pointer fields invalidates its tags, and the
//! relink immediately re-stores a fresh capability over the recycled
//! memory), and a periodic pointer scan that walks every live chain —
//! exactly the reuse/re-derivation/recheck traffic tree builders never
//! produce.
//!
//! The object graph is strictly ownership-shaped: each of `alloc_roots`
//! roots owns one chain linked through the `b` field, churn pushes or
//! pops only at chain heads, and a chain never exceeds [`CHAIN_CAP`]
//! nodes, so no dangling pointer is ever stored or loaded (which also
//! lets the native twin run the same graph on the panic-on-use-after-
//! free [`cheri_limit::TracedHeap`]).

use cheri_cc::ir::build::{
    add, alloc, band, bxor, c, call, cmp, index, is_null, l, load, loadp, mul, shr, sub, urem,
};
use cheri_cc::ir::{CmpOp, Expr, FuncDef, Module, Stmt, StructDef, Ty};
use cheri_cc::strategy::PtrStrategy;
use cheri_olden::OldenParams;

/// Maximum nodes per root chain; pops are forced at this depth. The
/// params presets keep `alloc_slots > alloc_roots * CHAIN_CAP` so the
/// arena can never run dry.
pub const CHAIN_CAP: i64 = 8;

/// Scan period: every `SCAN_EVERY` churn ops, walk all chains.
pub const SCAN_EVERY: i64 = 64;

/// Struct ids.
const SLOT: usize = 0;
const ROOT: usize = 1;
const ST: usize = 2;

/// `slot { gen, val, a*, b* }` — `a` threads the free list, `b` the
/// live chain; both are scrubbed on free.
const GEN: usize = 0;
const VAL: usize = 1;
const A: usize = 2;
const B: usize = 3;
/// `root { n, p* }`.
const RN: usize = 0;
const RP: usize = 1;
/// `st { live, allocs, frees, free*, arena* }`.
const LIVE: usize = 0;
const ALLOCS: usize = 1;
const FREES: usize = 2;
const FREE: usize = 3;
const ARENA: usize = 4;

/// Function ids.
const HINIT: usize = 0;
const SALLOC: usize = 1;
const SFREE: usize = 2;
const SCAN: usize = 3;
const MAIN: usize = 4;

/// `hinit(st, slots)`: allocate the arena and thread every slot onto
/// the free list (slot `slots-1` ends up at the head).
fn hinit_fn() -> FuncDef {
    // Locals: 0 st, 1 slots, 2 i, 3 s, 4 head, 5 arena.
    let body = vec![
        Stmt::Let(5, alloc(SLOT, l(1))),
        Stmt::StorePtr { ptr: l(0), strukt: ST, field: ARENA, value: l(5) },
        Stmt::Let(4, Expr::Null(SLOT)),
        Stmt::Let(2, c(0)),
        Stmt::While {
            cond: cmp(CmpOp::Lt, l(2), l(1)),
            body: vec![
                Stmt::Let(3, index(l(5), SLOT, l(2))),
                Stmt::StorePtr { ptr: l(3), strukt: SLOT, field: A, value: l(4) },
                Stmt::Let(4, l(3)),
                Stmt::Let(2, add(l(2), c(1))),
            ],
        },
        Stmt::StorePtr { ptr: l(0), strukt: ST, field: FREE, value: l(4) },
    ];
    FuncDef {
        name: "hinit",
        params: 2,
        ret: None,
        locals: vec![Ty::ptr(ST), Ty::I64, Ty::I64, Ty::ptr(SLOT), Ty::ptr(SLOT), Ty::ptr(SLOT)],
        body,
    }
}

/// `salloc(st)`: pop the free-list head, scrub its pointer fields,
/// bump its generation. Returns null only if the arena is exhausted
/// (prevented by the sizing invariant).
fn salloc_fn() -> FuncDef {
    // Locals: 0 st, 1 s.
    let body = vec![
        Stmt::Let(1, loadp(l(0), ST, FREE)),
        Stmt::If {
            cond: is_null(l(1)),
            then: vec![Stmt::Return(Some(Expr::Null(SLOT)))],
            els: vec![],
        },
        Stmt::StorePtr { ptr: l(0), strukt: ST, field: FREE, value: loadp(l(1), SLOT, A) },
        Stmt::StorePtr { ptr: l(1), strukt: SLOT, field: A, value: Expr::Null(SLOT) },
        Stmt::StorePtr { ptr: l(1), strukt: SLOT, field: B, value: Expr::Null(SLOT) },
        Stmt::Store {
            ptr: l(1),
            strukt: SLOT,
            field: GEN,
            value: add(load(l(1), SLOT, GEN), c(1)),
        },
        Stmt::Store { ptr: l(1), strukt: SLOT, field: VAL, value: c(0) },
        Stmt::Store { ptr: l(0), strukt: ST, field: LIVE, value: add(load(l(0), ST, LIVE), c(1)) },
        Stmt::Store {
            ptr: l(0),
            strukt: ST,
            field: ALLOCS,
            value: add(load(l(0), ST, ALLOCS), c(1)),
        },
        Stmt::Return(Some(l(1))),
    ];
    FuncDef {
        name: "salloc",
        params: 1,
        ret: Some(Ty::ptr(SLOT)),
        locals: vec![Ty::ptr(ST), Ty::ptr(SLOT)],
        body,
    }
}

/// `sfree(st, s)`: scrub the dead slot's pointer fields (tag
/// invalidation over recycled memory), then immediately re-store a
/// fresh capability as the free-list link.
fn sfree_fn() -> FuncDef {
    // Locals: 0 st, 1 s.
    let body = vec![
        Stmt::StorePtr { ptr: l(1), strukt: SLOT, field: A, value: Expr::Null(SLOT) },
        Stmt::StorePtr { ptr: l(1), strukt: SLOT, field: B, value: Expr::Null(SLOT) },
        Stmt::StorePtr { ptr: l(1), strukt: SLOT, field: A, value: loadp(l(0), ST, FREE) },
        Stmt::StorePtr { ptr: l(0), strukt: ST, field: FREE, value: l(1) },
        Stmt::Store { ptr: l(0), strukt: ST, field: LIVE, value: sub(load(l(0), ST, LIVE), c(1)) },
        Stmt::Store {
            ptr: l(0),
            strukt: ST,
            field: FREES,
            value: add(load(l(0), ST, FREES), c(1)),
        },
    ];
    FuncDef { name: "sfree", params: 2, ret: None, locals: vec![Ty::ptr(ST), Ty::ptr(SLOT)], body }
}

/// `scan(roots, nroots)`: walk every root's chain, summing
/// `gen * 3 + val` per node and folding per-root sums with `* 31`.
fn scan_fn() -> FuncDef {
    // Locals: 0 roots, 1 nroots, 2 i, 3 s, 4 sum, 5 rsum, 6 rp.
    let body = vec![
        Stmt::Let(5, c(0)),
        Stmt::Let(2, c(0)),
        Stmt::While {
            cond: cmp(CmpOp::Lt, l(2), l(1)),
            body: vec![
                Stmt::Let(6, index(l(0), ROOT, l(2))),
                Stmt::Let(3, loadp(l(6), ROOT, RP)),
                Stmt::Let(4, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Eq, is_null(l(3)), c(0)),
                    body: vec![
                        Stmt::Let(
                            4,
                            add(l(4), add(mul(load(l(3), SLOT, GEN), c(3)), load(l(3), SLOT, VAL))),
                        ),
                        Stmt::Let(3, loadp(l(3), SLOT, B)),
                    ],
                },
                Stmt::Let(5, add(mul(l(5), c(31)), l(4))),
                Stmt::Let(2, add(l(2), c(1))),
            ],
        },
        Stmt::Return(Some(l(5))),
    ];
    FuncDef {
        name: "scan",
        params: 2,
        ret: Some(Ty::I64),
        locals: vec![
            Ty::ptr(ROOT),
            Ty::I64,
            Ty::I64,
            Ty::ptr(SLOT),
            Ty::I64,
            Ty::I64,
            Ty::ptr(ROOT),
        ],
        body,
    }
}

/// Builds the `allocstress` module at the given problem size.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn module(p: &OldenParams) -> Module {
    let slots = i64::from(p.alloc_slots.max(16));
    let nroots = i64::from(p.alloc_roots.max(1));
    let ops = i64::from(p.alloc_ops);

    // Locals: 0 st, 1 roots, 2 t, 3 m, 4 r, 5 d, 6 root, 7 n, 8 s,
    // 9 acc, 10 rsum, 11 v.
    let push_op = || -> Vec<Stmt> {
        vec![
            Stmt::Let(8, call(SALLOC, vec![l(0)])),
            Stmt::Let(11, band(bxor(l(3), l(2)), c(0x7fff))),
            Stmt::Store { ptr: l(8), strukt: SLOT, field: VAL, value: l(11) },
            Stmt::StorePtr { ptr: l(8), strukt: SLOT, field: B, value: loadp(l(6), ROOT, RP) },
            Stmt::StorePtr { ptr: l(6), strukt: ROOT, field: RP, value: l(8) },
            Stmt::Store { ptr: l(6), strukt: ROOT, field: RN, value: add(l(7), c(1)) },
        ]
    };
    let pop_op = || -> Vec<Stmt> {
        vec![
            Stmt::Let(8, loadp(l(6), ROOT, RP)),
            Stmt::StorePtr { ptr: l(6), strukt: ROOT, field: RP, value: loadp(l(8), SLOT, B) },
            Stmt::Expr(call(SFREE, vec![l(0), l(8)])),
            Stmt::Store { ptr: l(6), strukt: ROOT, field: RN, value: sub(l(7), c(1)) },
        ]
    };

    let loop_body = vec![
        // m = mix(t) (same mixer as vmloop's reseed).
        Stmt::Let(3, mul(l(2), c(2_654_435_761))),
        Stmt::Let(3, bxor(l(3), shr(l(3), c(13)))),
        Stmt::Let(3, band(mul(l(3), c(97)), c(0xffff))),
        Stmt::Let(4, urem(l(3), c(nroots))),
        Stmt::Let(6, index(l(1), ROOT, l(4))),
        Stmt::Let(7, load(l(6), ROOT, RN)),
        Stmt::Let(5, band(shr(l(3), c(8)), c(3))),
        // Empty chain: must push. Full chain: must pop. Otherwise pop
        // on d == 3 (a 3:1 push bias keeps chains populated).
        Stmt::If {
            cond: cmp(CmpOp::Eq, l(7), c(0)),
            then: push_op(),
            els: vec![Stmt::If {
                cond: cmp(CmpOp::Ge, l(7), c(CHAIN_CAP)),
                then: pop_op(),
                els: vec![Stmt::If {
                    cond: cmp(CmpOp::Eq, l(5), c(3)),
                    then: pop_op(),
                    els: push_op(),
                }],
            }],
        },
        Stmt::If {
            cond: cmp(CmpOp::Eq, band(l(2), c(SCAN_EVERY - 1)), c(0)),
            then: vec![
                Stmt::Let(10, call(SCAN, vec![l(1), c(nroots)])),
                Stmt::Let(9, add(mul(l(9), c(31)), l(10))),
            ],
            els: vec![],
        },
        Stmt::Let(2, add(l(2), c(1))),
    ];

    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        locals: vec![
            Ty::ptr(ST),
            Ty::ptr(ROOT),
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::ptr(ROOT),
            Ty::I64,
            Ty::ptr(SLOT),
            Ty::I64,
            Ty::I64,
            Ty::I64,
        ],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(0, alloc(ST, c(1))),
            Stmt::Expr(call(HINIT, vec![l(0), c(slots)])),
            Stmt::Let(1, alloc(ROOT, c(nroots))),
            Stmt::Phase(2),
            Stmt::Let(2, c(0)),
            Stmt::Let(9, c(0)),
            Stmt::While { cond: cmp(CmpOp::Lt, l(2), c(ops)), body: loop_body },
            Stmt::Phase(3),
            Stmt::Print(load(l(0), ST, ALLOCS)),
            Stmt::Print(load(l(0), ST, FREES)),
            Stmt::Print(l(9)),
            Stmt::Print(load(l(0), ST, LIVE)),
            Stmt::Return(Some(load(l(0), ST, LIVE))),
        ],
    };

    Module {
        structs: vec![
            StructDef {
                name: "slot",
                fields: vec![Ty::I64, Ty::I64, Ty::ptr(SLOT), Ty::ptr(SLOT)],
            },
            StructDef { name: "root", fields: vec![Ty::I64, Ty::ptr(SLOT)] },
            StructDef {
                name: "st",
                fields: vec![Ty::I64, Ty::I64, Ty::I64, Ty::ptr(SLOT), Ty::ptr(SLOT)],
            },
        ],
        funcs: vec![hinit_fn(), salloc_fn(), sfree_fn(), scan_fn(), main_fn],
        entry: MAIN,
    }
}

/// Physical memory needed: the arena plus the root table, with
/// worst-case per-slot rounding under fat/capability strategies.
#[must_use]
pub fn mem_needed(p: &OldenParams, strategy: &dyn PtrStrategy) -> usize {
    let ptr = strategy.ptr_size();
    let slot = (16 + 2 * ptr).div_ceil(32) * 32;
    let root = (8 + ptr).div_ceil(32) * 32;
    let heap = u64::from(p.alloc_slots.max(16)) * slot
        + u64::from(p.alloc_roots.max(1)) * root
        + (24 + 2 * ptr).div_ceil(32) * 32;
    usize::try_from(heap.div_ceil(1 << 20) + 8).expect("sane size") << 20
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check, Limits};
    use cheri_cc::strategy::LegacyPtr;

    #[test]
    fn module_checks() {
        let m = module(&OldenParams::scaled());
        check(&m, Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    #[test]
    fn churn_balances_and_stays_live() {
        let p = OldenParams::scaled();
        let m = module(&p);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        // prints: [allocs, frees, acc, live]
        let [allocs, frees, _acc, live] = out.prints[..] else {
            panic!("expected 4 prints, got {:?}", out.prints)
        };
        assert_eq!(allocs - frees, live, "allocation accounting must balance");
        assert!(allocs > frees, "churn must leave a live set");
        assert!(frees > 0, "churn must free (slot reuse is the point)");
        // Every chain is bounded, so the live set is too.
        assert!(live <= u64::from(p.alloc_roots) * CHAIN_CAP as u64);
        assert_eq!(out.exit_value(), Some(live));
    }

    #[test]
    fn slots_are_recycled() {
        // With the scaled arena and op count, frees must exceed the
        // arena size — i.e. slots get reused and generations climb,
        // which is the capability-invalidation traffic this workload
        // exists to produce.
        let p = OldenParams::scaled();
        let m = module(&p);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        assert!(
            out.prints[1] > u64::from(p.alloc_slots),
            "frees ({}) must wrap the arena ({}) so slots are reused",
            out.prints[1],
            p.alloc_slots
        );
    }
}
