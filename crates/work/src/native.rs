//! Native (host-speed) twins of the `cheri-work` workloads against the
//! [`TracedHeap`], plus the combined nine-workload native set the
//! Figure 3 limit study consumes (the seven Olden-suite natives from
//! `cheri_olden::native` and the two runtime-system workloads here).
//!
//! Each twin mirrors its IR sibling operation-for-operation — same
//! mixer constants, same decision logic, same wrapping arithmetic — so
//! the checksums the DSL binaries print must equal what the native
//! twin computes; `native_matches_dsl_prints` asserts exactly that.
//! The `allocstress` twin performs a real `malloc`/`free` per churn op
//! (the limit models see genuine reuse traffic), with a host-side
//! free-list of slot ids standing in for the guest's in-arena list.

use std::collections::HashMap;

use cheri_limit::{TPtr, Trace, TracedHeap};
use cheri_olden::native::NativeRun;
use cheri_olden::OldenParams;

use crate::allocstress::{CHAIN_CAP, SCAN_EVERY};
use crate::vmloop::{
    mix, ADD, CODE_MAX, DUP, HLOAD, HSTORE, JMP, JZ, LOAD, LT, MUL, NLOCALS, NPOOL, PUSHC,
    STACK_MAX, STORE, SUB,
};

/// Every native workload — the Olden seven plus the runtime-system
/// pair — in limit-study order.
pub const WORKLOADS: [(&str, cheri_olden::native::Workload); 9] = [
    ("treeadd", cheri_olden::native::treeadd),
    ("bisort", cheri_olden::native::bisort),
    ("perimeter", cheri_olden::native::perimeter),
    ("mst", cheri_olden::native::mst),
    ("em3d", cheri_olden::native::em3d),
    ("health", cheri_olden::native::health),
    ("power", cheri_olden::native::power),
    ("vmloop", vmloop),
    ("allocstress", allocstress),
];

/// Runs every native workload, returning their traces.
#[must_use]
pub fn all_traces(p: &OldenParams) -> Vec<Trace> {
    WORKLOADS.iter().map(|(_, f)| f(p).trace).collect()
}

// --- vmloop -------------------------------------------------------------

/// `vm` object layout (matches the IR struct field order at 8-byte
/// slots): `pc@0, sp@8, steps@16`, then the five pointers.
const VPC: u64 = 0;
const VSP: u64 = 8;
const VSTEPS: u64 = 16;
const VCODE: u64 = 24;
const VSTACK: u64 = 32;
const VLOCALS: u64 = 40;
const VPOOL: u64 = 48;
const VHEAP: u64 = 56;

fn vm_reseed(h: &mut TracedHeap, heap: TPtr, count: i64, salt: i64, mask: i64) {
    for j in 0..count {
        h.compute(4);
        h.store_int(heap, j as u64 * 8, mix(salt + j, mask));
    }
}

#[allow(clippy::cast_sign_loss)]
fn vm_interp(h: &mut TracedHeap, vm: TPtr) -> i64 {
    let code = h.load_ptr(vm, VCODE);
    let stack = h.load_ptr(vm, VSTACK);
    let locs = h.load_ptr(vm, VLOCALS);
    let pool = h.load_ptr(vm, VPOOL);
    let heap = h.load_ptr(vm, VHEAP);
    let mut pc = h.load_int(vm, VPC);
    let mut sp = h.load_int(vm, VSP);
    let mut steps = 0i64;
    let mut running = true;
    while running {
        let op = h.load_int(code, pc as u64 * 16);
        let arg = h.load_int(code, pc as u64 * 16 + 8);
        pc += 1;
        steps += 1;
        h.compute(2);
        match op {
            PUSHC => {
                let v = h.load_int(pool, arg as u64 * 8);
                h.store_int(stack, sp as u64 * 8, v);
                sp += 1;
            }
            LOAD => {
                let v = h.load_int(locs, arg as u64 * 8);
                h.store_int(stack, sp as u64 * 8, v);
                sp += 1;
            }
            STORE => {
                sp -= 1;
                let v = h.load_int(stack, sp as u64 * 8);
                h.store_int(locs, arg as u64 * 8, v);
            }
            ADD | SUB | MUL | LT => {
                sp -= 1;
                let b = h.load_int(stack, sp as u64 * 8);
                let a = h.load_int(stack, (sp - 1) as u64 * 8);
                let r = match op {
                    ADD => a.wrapping_add(b),
                    SUB => a.wrapping_sub(b),
                    MUL => a.wrapping_mul(b),
                    _ => i64::from(a < b),
                };
                h.store_int(stack, (sp - 1) as u64 * 8, r);
            }
            JMP => pc = arg,
            JZ => {
                sp -= 1;
                if h.load_int(stack, sp as u64 * 8) == 0 {
                    pc = arg;
                }
            }
            DUP => {
                let v = h.load_int(stack, (sp - 1) as u64 * 8);
                h.store_int(stack, sp as u64 * 8, v);
                sp += 1;
            }
            HLOAD => {
                let a = h.load_int(stack, (sp - 1) as u64 * 8);
                let v = h.load_int(heap, a as u64 * 8);
                h.store_int(stack, (sp - 1) as u64 * 8, v);
            }
            HSTORE => {
                sp -= 1;
                let a = h.load_int(stack, sp as u64 * 8);
                sp -= 1;
                let v = h.load_int(stack, sp as u64 * 8);
                h.store_int(heap, a as u64 * 8, v);
            }
            // HALT and (unreachable) unknown opcodes.
            _ => running = false,
        }
    }
    h.store_int(vm, VPC, pc);
    h.store_int(vm, VSP, sp);
    let s = h.load_int(vm, VSTEPS);
    h.store_int(vm, VSTEPS, s + steps);
    if sp > 0 {
        h.load_int(stack, (sp - 1) as u64 * 8)
    } else {
        0
    }
}

/// The native run plus the four values the DSL binary prints:
/// `[acc_fib, acc_sort, acc_hash, steps]`.
#[must_use]
pub fn vmloop_full(p: &OldenParams) -> (NativeRun, [u64; 4]) {
    let progs = crate::vmloop::programs(p);
    let cells = u64::from(crate::vmloop::heap_cells(p));
    let sort_m = i64::from(p.vm_sort.max(2));
    let hash_k = i64::from(p.vm_hash.max(1));
    let mut h = TracedHeap::new();
    let vm = h.alloc(64);
    let code = h.alloc(u64::from(CODE_MAX) * 16);
    let stack = h.alloc(u64::from(STACK_MAX) * 8);
    let locs = h.alloc(u64::from(NLOCALS) * 8);
    let pool = h.alloc(u64::from(NPOOL) * 8);
    let heap = h.alloc(cells * 8);
    h.store_ptr(vm, VCODE, code);
    h.store_ptr(vm, VSTACK, stack);
    h.store_ptr(vm, VLOCALS, locs);
    h.store_ptr(vm, VPOOL, pool);
    h.store_ptr(vm, VHEAP, heap);
    h.store_int(vm, VSTEPS, 0);
    let mut accs = [0i64; 3];
    for iter in 0..i64::from(p.vm_iters.max(1)) {
        for (pi, prog) in progs.iter().enumerate() {
            for (i, &(op, arg)) in prog.code.iter().enumerate() {
                h.store_int(code, i as u64 * 16, op);
                h.store_int(code, i as u64 * 16 + 8, arg);
            }
            for (i, &v) in prog.pool.iter().enumerate() {
                h.store_int(pool, i as u64 * 8, v);
            }
            match pi {
                1 => vm_reseed(&mut h, heap, sort_m, iter.wrapping_mul(977) + 13, 0xffff),
                2 => vm_reseed(&mut h, heap, hash_k, iter.wrapping_mul(353) + 7, 0x7f),
                _ => {}
            }
            h.store_int(vm, VPC, 0);
            h.store_int(vm, VSP, 0);
            let r = vm_interp(&mut h, vm);
            accs[pi] = accs[pi].wrapping_mul(33).wrapping_add(r);
        }
    }
    let steps = h.load_int(vm, VSTEPS);
    let prints = [accs[0] as u64, accs[1] as u64, accs[2] as u64, steps as u64];
    (NativeRun { trace: h.finish("vmloop"), checksum: steps as u64 }, prints)
}

/// `vmloop`: the guest bytecode VM, natively interpreted against the
/// traced heap.
#[must_use]
pub fn vmloop(p: &OldenParams) -> NativeRun {
    vmloop_full(p).0
}

// --- allocstress --------------------------------------------------------

/// `slot` object layout: `gen@0, val@8, a@16 (unused natively), b@24`.
const SGEN: u64 = 0;
const SVAL: u64 = 8;
const SB: u64 = 24;

/// The native run plus the four values the DSL binary prints:
/// `[allocs, frees, acc, live]`.
///
/// # Panics
///
/// Panics if the arena invariant (`alloc_slots > alloc_roots *
/// CHAIN_CAP`) is violated and the free list runs dry.
#[must_use]
#[allow(clippy::cast_sign_loss, clippy::missing_panics_doc)]
pub fn allocstress_full(p: &OldenParams) -> (NativeRun, [u64; 4]) {
    let slots = p.alloc_slots.max(16) as usize;
    let nroots = i64::from(p.alloc_roots.max(1));
    let ops = i64::from(p.alloc_ops);
    let mut h = TracedHeap::new();
    // Root table: root r at offset r*16 { n@+0, p@+8 }.
    let roots = h.alloc(nroots as u64 * 16);
    // The guest's in-arena free list, mirrored host-side: same LIFO
    // discipline, same initial order (slot slots-1 pops first), and a
    // per-slot generation counter surviving reuse.
    let mut free: Vec<usize> = (0..slots).collect();
    let mut gens: Vec<i64> = vec![0; slots];
    let mut ids: HashMap<TPtr, usize> = HashMap::new();
    let (mut allocs, mut frees, mut live) = (0i64, 0i64, 0i64);
    let mut acc = 0i64;
    for t in 0..ops {
        let m = mix(t, 0xffff);
        let r = (m % nroots) as u64;
        let n = h.load_int(roots, r * 16);
        let d = (m >> 8) & 3;
        h.compute(8);
        if n == 0 || (n < CHAIN_CAP && d != 3) {
            // Push: the guest's salloc pops the free-list head and
            // bumps the slot generation; natively that is a fresh
            // malloc carrying the recycled slot's generation.
            let id = free.pop().expect("arena exhausted");
            gens[id] += 1;
            let s = h.alloc(32);
            ids.insert(s, id);
            h.store_int(s, SGEN, gens[id]);
            h.store_int(s, SVAL, (m ^ t) & 0x7fff);
            let head = h.load_ptr(roots, r * 16 + 8);
            h.store_ptr(s, SB, head);
            h.store_ptr(roots, r * 16 + 8, s);
            h.store_int(roots, r * 16, n + 1);
            allocs += 1;
            live += 1;
        } else {
            let s = h.load_ptr(roots, r * 16 + 8);
            let next = h.load_ptr(s, SB);
            h.store_ptr(roots, r * 16 + 8, next);
            let id = ids.remove(&s).expect("pop of untracked object");
            h.free(s);
            free.push(id);
            h.store_int(roots, r * 16, n - 1);
            frees += 1;
            live -= 1;
        }
        if t & (SCAN_EVERY - 1) == 0 {
            let mut rsum = 0i64;
            for i in 0..nroots as u64 {
                let mut s = h.load_ptr(roots, i * 16 + 8);
                let mut sum = 0i64;
                while !s.is_null() {
                    h.compute(3);
                    let node =
                        h.load_int(s, SGEN).wrapping_mul(3).wrapping_add(h.load_int(s, SVAL));
                    sum = sum.wrapping_add(node);
                    s = h.load_ptr(s, SB);
                }
                rsum = rsum.wrapping_mul(31).wrapping_add(sum);
            }
            acc = acc.wrapping_mul(31).wrapping_add(rsum);
        }
    }
    let prints = [allocs as u64, frees as u64, acc as u64, live as u64];
    (NativeRun { trace: h.finish("allocstress"), checksum: acc as u64 }, prints)
}

/// `allocstress`: free-list churn with real per-op `malloc`/`free`.
#[must_use]
pub fn allocstress(p: &OldenParams) -> NativeRun {
    allocstress_full(p).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::strategy::LegacyPtr;
    use cheri_limit::Event;

    fn dsl_prints(w: crate::Workload, p: &OldenParams) -> Vec<u64> {
        let m = w.module(p);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        k.exec_and_run(&prog).unwrap().prints
    }

    #[test]
    fn native_matches_dsl_prints() {
        let p = OldenParams::scaled();
        let (_, vm) = vmloop_full(&p);
        assert_eq!(dsl_prints(crate::Workload::Vmloop, &p), vm.to_vec(), "vmloop");
        let (_, al) = allocstress_full(&p);
        assert_eq!(dsl_prints(crate::Workload::Allocstress, &p), al.to_vec(), "allocstress");
    }

    #[test]
    fn combined_set_produces_nonempty_traces() {
        let p = OldenParams::scaled();
        for (name, f) in WORKLOADS {
            let run = f(&p);
            assert!(run.trace.accesses() > 100, "{name} trace too small");
            assert!(!run.trace.objects.is_empty(), "{name} allocated nothing");
            assert_eq!(run.trace.name, name);
        }
        assert_eq!(all_traces(&p).len(), WORKLOADS.len());
    }

    #[test]
    fn new_workloads_are_deterministic() {
        let p = OldenParams::scaled();
        for f in [vmloop, allocstress] {
            let a = f(&p);
            let b = f(&p);
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.trace.events.len(), b.trace.events.len());
        }
    }

    #[test]
    fn allocstress_trace_reuses_memory() {
        let p = OldenParams::scaled();
        let run = allocstress(&p);
        let frees = run.trace.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        assert!(
            frees > p.alloc_slots as usize,
            "allocstress must free more objects ({frees}) than the arena has slots"
        );
    }
}
