//! Shared command-line plumbing for the `cheri-bench` binaries.
//!
//! Every harness hand-rolls its flags (no `clap` in an offline build),
//! and before this module each one re-implemented the same scanner:
//! an index loop over `argv`, a `value(i)` closure for operands, a
//! `usage()` that exits 2 and a `fail()` that exits 1. [`Cli`] is that
//! scanner, extracted once: a cursor over the arguments with helpers
//! for required, optional, and integer-valued operands, plus the two
//! exit conventions the binaries share — exit 2 for "you called me
//! wrong" (with the usage synopsis), exit 1 for "the run found a
//! problem" — so scripts can tell misuse from failure uniformly across
//! every tool.

use std::path::Path;

/// Prints `tool: msg` and exits 1 — a runtime failure on a well-formed
/// invocation (unreadable input, failed gate, divergence).
pub fn fail(tool: &str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}");
    std::process::exit(1);
}

/// Writes `text` to `path`, creating parent directories, exiting 1 (via
/// [`fail`]) if the filesystem refuses.
pub fn write_file(tool: &str, path: &Path, text: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(tool, &format!("cannot create {}: {e}", dir.display())));
    }
    std::fs::write(path, text)
        .unwrap_or_else(|e| fail(tool, &format!("cannot write {}: {e}", path.display())));
}

/// A cursor over the process arguments.
pub struct Cli {
    tool: &'static str,
    usage: &'static str,
    argv: Vec<String>,
    pos: usize,
}

impl Cli {
    /// Captures the process arguments (program name skipped). `usage`
    /// is the synopsis printed under misuse messages.
    #[must_use]
    pub fn new(tool: &'static str, usage: &'static str) -> Cli {
        Cli { tool, usage, argv: std::env::args().skip(1).collect(), pos: 0 }
    }

    /// A `Cli` over explicit arguments (tests).
    #[must_use]
    pub fn from_args(tool: &'static str, usage: &'static str, argv: Vec<String>) -> Cli {
        Cli { tool, usage, argv, pos: 0 }
    }

    /// The tool name (for messages printed by the caller).
    #[must_use]
    pub fn tool(&self) -> &'static str {
        self.tool
    }

    /// Consumes and returns the next argument; `None` when exhausted.
    /// The typical driver is `while let Some(arg) = cli.next_arg()`
    /// with a `match` on the flag.
    pub fn next_arg(&mut self) -> Option<String> {
        let arg = self.argv.get(self.pos).cloned();
        if arg.is_some() {
            self.pos += 1;
        }
        arg
    }

    /// Consumes the required operand of `flag` (the token the caller
    /// just matched); exits 2 if it is missing.
    pub fn value(&mut self, flag: &str) -> String {
        match self.next_arg() {
            Some(v) => v,
            None => self.usage_exit(&format!("{flag} requires a value")),
        }
    }

    /// Consumes the next argument only if it is present and not itself
    /// a flag — the optional-operand convention (`--bless [PATH]`).
    pub fn opt_value(&mut self) -> Option<String> {
        let v = self.argv.get(self.pos).filter(|v| !v.starts_with("--")).cloned();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    /// Consumes and parses the required operand of `flag`; exits 2
    /// with "`flag` requires `what`" if missing or unparsable.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> T {
        let raw = self.value(flag);
        match raw.parse() {
            Ok(v) => v,
            Err(_) => self.usage_exit(&format!("{flag} requires {what}")),
        }
    }

    /// [`Cli::parsed`] specialised to the common "positive integer"
    /// operand (`--jobs`, `--top`, `--steps`).
    pub fn positive(&mut self, flag: &str) -> usize {
        let n: usize = self.parsed(flag, "a positive integer");
        if n == 0 {
            self.usage_exit(&format!("{flag} requires a positive integer"));
        }
        n
    }

    /// Command-line misuse: prints the message and the usage synopsis,
    /// exits 2.
    pub fn usage_exit(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.tool);
        eprintln!("usage: {}", self.usage);
        std::process::exit(2);
    }

    /// The standard rejection for an unmatched argument.
    pub fn unknown(&self, arg: &str) -> ! {
        self.usage_exit(&format!("unknown argument '{arg}'"))
    }

    /// Runtime failure, exit 1 (see the module docs for the 1-vs-2
    /// convention).
    pub fn fail(&self, msg: &str) -> ! {
        fail(self.tool, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args("t", "t [flags]", args.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn cursor_walks_flags_and_operands() {
        let mut c = cli(&["--a", "1", "--b", "--c", "x"]);
        assert_eq!(c.next_arg().as_deref(), Some("--a"));
        assert_eq!(c.value("--a"), "1");
        assert_eq!(c.next_arg().as_deref(), Some("--b"));
        assert_eq!(c.opt_value(), None, "a flag is not an optional operand");
        assert_eq!(c.next_arg().as_deref(), Some("--c"));
        assert_eq!(c.opt_value().as_deref(), Some("x"));
        assert_eq!(c.next_arg(), None);
    }

    #[test]
    fn parsed_and_positive() {
        let mut c = cli(&["--jobs", "4", "--top", "7"]);
        let _ = c.next_arg();
        assert_eq!(c.positive("--jobs"), 4);
        let _ = c.next_arg();
        assert_eq!(c.parsed::<u64>("--top", "an integer"), 7);
    }
}
