//! Shared divergence-triage plumbing: the helpers `snapreplay` and
//! `specfuzz` both need for replaying machines, fingerprinting state,
//! and dumping divergences to disk.

use beri_sim::{Machine, StepResult};
use cheri_snap::{MachineState, Snapshot};
use std::path::{Path, PathBuf};

/// Loads either a full [`Snapshot`] (machine + kernel) or a bare
/// [`MachineState`]; replay tooling only needs the machine section.
///
/// # Errors
///
/// A rendered message when the file cannot be read or is neither
/// format.
pub fn load_machine_state(path: &Path) -> Result<MachineState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match Snapshot::from_json(&text) {
        Ok(snap) => Ok(snap.machine),
        Err(snap_err) => MachineState::from_json(&text)
            .map_err(|_| format!("{} is not a cheri-snap snapshot: {snap_err}", path.display())),
    }
}

/// Runs up to `steps` further instructions. Returns how many actually
/// retired: replay stops early at a syscall (no OS underneath) or on a
/// fault the bare machine cannot absorb — both of which are themselves
/// state the comparison sees.
pub fn run_free(m: &mut Machine, steps: u64) -> u64 {
    let start = m.stats.instructions;
    while m.stats.instructions - start < steps {
        let left = steps - (m.stats.instructions - start);
        match m.run(left) {
            Ok(StepResult::Continue) => {}
            Ok(_) | Err(_) => break,
        }
    }
    m.stats.instructions - start
}

/// A cheap per-instruction fingerprint of architectural CPU state
/// (FNV-1a over GPRs, HI/LO, the PC pair, and the retired count). Full
/// state hashes are only computed where the fingerprints disagree — or
/// at the horizon, to catch memory-only divergence.
#[must_use]
pub fn cpu_fingerprint(m: &Machine) -> u64 {
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_be_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for r in 0..32 {
        mix(m.cpu.get_gpr(r));
    }
    mix(m.cpu.hi);
    mix(m.cpu.lo);
    mix(m.cpu.pc);
    mix(m.cpu.next_pc);
    mix(m.stats.instructions);
    h
}

/// Writes a machine's full state as a JSON snapshot under `out` and
/// returns the path.
///
/// # Errors
///
/// A rendered message when the directory or file cannot be written.
pub fn dump_machine(out: &Path, name: &str, m: &Machine) -> Result<PathBuf, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let path = out.join(name);
    std::fs::write(&path, m.snapshot().to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Locates the first byte where two JSON documents differ and renders
/// it as a JSON path plus byte offset with a short context preview —
/// "the reports differ" is useless on a megabyte of sweep output.
///
/// Returns `None` when the documents are byte-identical.
#[must_use]
pub fn first_json_difference(got: &str, want: &str) -> Option<String> {
    let (g, w) = (got.as_bytes(), want.as_bytes());
    let n = g.iter().zip(w).take_while(|(a, b)| a == b).count();
    if n == g.len() && n == w.len() {
        return None;
    }
    Some(format!(
        "first difference at byte {n} (JSON path {}): got {}, expected {}",
        json_path_at(got, n),
        preview(g, n),
        preview(w, n)
    ))
}

/// A short printable excerpt starting at `at` (or "end of document").
fn preview(bytes: &[u8], at: usize) -> String {
    if at >= bytes.len() {
        return "end of document".to_string();
    }
    let end = bytes.len().min(at + 24);
    let mut s = String::from_utf8_lossy(&bytes[at..end]).into_owned();
    s.retain(|c| !c.is_control());
    format!("{s:?}{}", if end < bytes.len() { "…" } else { "" })
}

/// The JSON path (e.g. `$.runs[3].stats.cycles`) enclosing byte `at`,
/// reconstructed by scanning the (well-formed) prefix before the
/// difference. Works on a truncated suffix too: whatever containers are
/// still open at `at` *are* the path.
fn json_path_at(text: &str, at: usize) -> String {
    enum Frame {
        Object { key: Option<String>, expect_key: bool },
        Array { index: usize },
    }
    let bytes = text.as_bytes();
    let end = at.min(bytes.len());
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = 0;
    while i < end {
        match bytes[i] {
            b'{' => stack.push(Frame::Object { key: None, expect_key: true }),
            b'[' => stack.push(Frame::Array { index: 0 }),
            b'}' | b']' => {
                stack.pop();
            }
            b',' => match stack.last_mut() {
                Some(Frame::Array { index }) => *index += 1,
                Some(Frame::Object { expect_key, .. }) => *expect_key = true,
                None => {}
            },
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < end && bytes[i] != b'"' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                }
                if i >= end {
                    break; // the difference is inside this string
                }
                if let Some(Frame::Object { key, expect_key }) = stack.last_mut() {
                    if *expect_key {
                        *key = Some(text[start..i].to_string());
                        *expect_key = false;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    let mut path = String::from("$");
    for frame in &stack {
        match frame {
            Frame::Object { key: Some(k), .. } => {
                path.push('.');
                path.push_str(k);
            }
            Frame::Object { key: None, .. } => path.push_str(".{}"),
            Frame::Array { index } => {
                path.push_str(&format!("[{index}]"));
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use beri_sim::MachineConfig;

    #[test]
    fn fingerprint_tracks_architectural_state() {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..Default::default() });
        let before = cpu_fingerprint(&m);
        m.cpu.set_gpr(7, 42);
        assert_ne!(cpu_fingerprint(&m), before, "GPR change must move the fingerprint");
    }

    #[test]
    fn run_free_counts_retired_instructions() {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..Default::default() });
        // Zeroed memory decodes as NOPs; the machine just runs.
        assert_eq!(run_free(&mut m, 100), 100);
        assert_eq!(m.stats.instructions, 100);
    }

    #[test]
    fn identical_documents_have_no_difference() {
        let doc = r#"{"a": [1, 2, {"b": 3}]}"#;
        assert_eq!(first_json_difference(doc, doc), None);
    }

    #[test]
    fn difference_reports_path_and_offset() {
        let got = r#"{"runs": [{"cycles": 100}, {"cycles": 250}]}"#;
        let want = r#"{"runs": [{"cycles": 100}, {"cycles": 999}]}"#;
        let msg = first_json_difference(got, want).expect("documents differ");
        assert!(msg.contains("byte 38"), "{msg}");
        assert!(msg.contains("$.runs[1].cycles"), "{msg}");
        assert!(msg.contains("\"250"), "{msg}");
        assert!(msg.contains("\"999"), "{msg}");
    }

    #[test]
    fn difference_inside_a_string_keeps_the_enclosing_path() {
        let got = r#"{"label": "baseline"}"#;
        let want = r#"{"label": "contrast"}"#;
        let msg = first_json_difference(got, want).expect("documents differ");
        assert!(msg.contains("$.label"), "{msg}");
    }

    #[test]
    fn truncation_reports_end_of_document() {
        let got = r#"{"a": 1}"#;
        let want = r#"{"a": 1, "b": 2}"#;
        let msg = first_json_difference(got, want).expect("documents differ");
        assert!(msg.contains("byte 7"), "{msg}");
        assert!(msg.contains("end of document") || msg.contains('}'), "{msg}");
    }
}
