//! Figure 2 reproduction: the BERI 6-stage pipeline and its capability
//! coprocessor couplings, printed from the simulator's own stage model.

use beri_sim::pipeline::{INDIRECT_JUMP_PENALTY, MISPREDICT_PENALTY, STAGES};

fn main() {
    println!("== Figure 2: BERI pipeline with capability coprocessor ==\n");
    for (i, s) in STAGES.iter().enumerate() {
        println!("{}. {s}", i + 1);
    }
    println!("\ntiming model: mispredicted branch +{MISPREDICT_PENALTY} cycles, indirect jump +{INDIRECT_JUMP_PENALTY} cycle");
    println!("capability register file: 32 x 256-bit + PCC; all capability");
    println!("manipulations are single-cycle (vs >=241 cycles for an IA32");
    println!("protected segment load, Section 4.4).");
}
