//! Figure 4 reproduction: execution-time overhead of software (CCured-
//! style) and hardware (CHERI) memory safety relative to unmodified MIPS
//! code, decomposed into allocation and computation phases, for bisort,
//! mst, treeadd and perimeter.
//!
//! A thin text view over the canonical `cheri-sweep` matrix: the job
//! list comes from [`FIGURE4_STRATEGIES`] and executes on the parallel
//! sweep engine (`--jobs N`; with `--trace-out` the jobs run serially
//! so the event stream stays one ordered file).

use cheri_bench::{bar, overhead_pct, params_for, parse_jobs, parse_scale, parse_trace_out};
use cheri_olden::dsl::BenchRun;
use cheri_sweep::{run_specs, run_specs_traced, JobSpec, FIGURE4_STRATEGIES};
use cheri_trace::Sink;
use cheri_work::Workload;

fn main() {
    let scale = parse_scale();
    let params = params_for(scale);
    // `--trace-out <path>`: stream every event of every run as JSON
    // lines, with a marker line delimiting each benchmark/mode pair.
    let sink = parse_trace_out();
    let specs: Vec<JobSpec> = Workload::ALL
        .into_iter()
        .flat_map(|bench| {
            FIGURE4_STRATEGIES.into_iter().map(move |s| JobSpec::new(bench, s, params))
        })
        .collect();
    let results = match &sink {
        Some(s) => run_specs_traced(&specs, s),
        None => run_specs(&specs, parse_jobs()),
    };

    println!("== Figure 4: execution-time overhead vs unsafe MIPS ({scale:?} sizes) ==\n");
    println!(
        "{:<12}{:<14}{:>9}{:>10}{:>9}   total",
        "benchmark", "mode", "alloc%", "compute%", "total%"
    );

    for (bench, group) in Workload::ALL.iter().zip(results.chunks(FIGURE4_STRATEGIES.len())) {
        let runs: Vec<&BenchRun> = group.iter().map(|r| &r.run).collect();
        // All three binaries must compute the same result.
        let base_sums = runs[0].checksums();
        for r in &runs[1..] {
            assert_eq!(
                r.checksums(),
                base_sums,
                "{} checksum mismatch in mode {}",
                bench.name(),
                r.mode
            );
        }
        let base = runs[0];
        for r in &runs {
            let alloc = overhead_pct(r.alloc.cycles, base.alloc.cycles);
            let compute = overhead_pct(r.compute.cycles, base.compute.cycles);
            let total = overhead_pct(r.total_cycles(), base.total_cycles());
            println!(
                "{:<12}{:<14}{:>8.1}%{:>9.1}%{:>8.1}%   {}",
                bench.name(),
                r.mode,
                alloc,
                compute,
                total,
                bar(total, 4.0)
            );
        }
        let ccured = overhead_pct(runs[1].total_cycles(), base.total_cycles());
        let cheri = overhead_pct(runs[2].total_cycles(), base.total_cycles());
        assert!(
            cheri < ccured,
            "{}: CHERI ({cheri:.1}%) must outperform CCured ({ccured:.1}%)",
            bench.name()
        );
        println!();
    }
    println!("(paper: 'CHERI outperforms CCured substantially in all configurations')");
    if let Some(s) = &sink {
        s.borrow_mut().flush();
    }
}
