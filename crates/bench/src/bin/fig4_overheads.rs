//! Figure 4 reproduction: execution-time overhead of software (CCured-
//! style) and hardware (CHERI) memory safety relative to unmodified MIPS
//! code, decomposed into allocation and computation phases, for bisort,
//! mst, treeadd and perimeter.

use beri_sim::MachineConfig;
use cheri_bench::{
    bar, figure4_strategies, overhead_pct, params_for, parse_scale, parse_trace_out,
};
use cheri_olden::dsl::{run_bench_with_sink, BenchRun, DslBench};
use cheri_trace::{marker, Sink};

fn main() {
    let scale = parse_scale();
    let params = params_for(scale);
    // `--trace-out <path>`: stream every event of every run as JSON
    // lines, with a marker line delimiting each benchmark/mode pair.
    let sink = parse_trace_out();
    println!("== Figure 4: execution-time overhead vs unsafe MIPS ({scale:?} sizes) ==\n");
    println!(
        "{:<11}{:<14}{:>9}{:>10}{:>9}   total",
        "benchmark", "mode", "alloc%", "compute%", "total%"
    );

    for bench in DslBench::ALL {
        let mut runs: Vec<BenchRun> = Vec::new();
        for strategy in figure4_strategies() {
            let cfg = MachineConfig {
                mem_bytes: bench.mem_needed(&params, strategy.as_ref()),
                ..MachineConfig::default()
            };
            marker(&sink, &format!("run start: {}/{}", bench.name(), strategy.name()));
            let run = run_bench_with_sink(bench, &params, strategy.as_ref(), cfg, sink.clone())
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), strategy.name()));
            runs.push(run);
        }
        // All three binaries must compute the same result.
        let base_sums = runs[0].checksums().to_vec();
        for r in &runs[1..] {
            assert_eq!(
                r.checksums(),
                &base_sums[..],
                "{} checksum mismatch in mode {}",
                bench.name(),
                r.mode
            );
        }
        let base = &runs[0];
        for r in &runs {
            let alloc = overhead_pct(r.alloc.cycles, base.alloc.cycles);
            let compute = overhead_pct(r.compute.cycles, base.compute.cycles);
            let total = overhead_pct(r.total_cycles(), base.total_cycles());
            println!(
                "{:<11}{:<14}{:>8.1}%{:>9.1}%{:>8.1}%   {}",
                bench.name(),
                r.mode,
                alloc,
                compute,
                total,
                bar(total, 4.0)
            );
        }
        let ccured = overhead_pct(runs[1].total_cycles(), base.total_cycles());
        let cheri = overhead_pct(runs[2].total_cycles(), base.total_cycles());
        assert!(
            cheri < ccured,
            "{}: CHERI ({cheri:.1}%) must outperform CCured ({ccured:.1}%)",
            bench.name()
        );
        println!();
    }
    println!("(paper: 'CHERI outperforms CCured substantially in all configurations')");
    if let Some(s) = &sink {
        s.borrow_mut().flush();
    }
}
