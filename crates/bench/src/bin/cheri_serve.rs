//! `cheri-serve` — the persistent sweep/profile simulation service.
//!
//! Boots the TCP server from `cheri-serve` (the crate), keeps a pool of
//! pre-booted phase-2 snapshots that workers clone-and-resume for warm
//! execution, and serves line-delimited JSON requests (sweep / job /
//! profile / replay — see DESIGN.md §4f for the protocol). SIGINT and
//! SIGTERM drain: in-flight jobs finish, queued jobs bail, the process
//! exits 0 with nothing partial on disk.
//!
//! ```text
//! cheri-serve [--addr HOST:PORT]      bind address (default 127.0.0.1:0,
//!                                     an ephemeral port; the bound address
//!                                     is printed as "listening on ...")
//!             [--workers N]           worker threads (default: host)
//!             [--no-cache]            disable the content-hashed result cache
//!             [--no-warm]             disable snapshot-pool warm execution
//!                                     (every uncached job boots cold)
//!             [--prewarm PROFILE]     pre-boot the snapshot pool for a
//!                                     profile (smoke|full|paper) before
//!                                     accepting work
//!             [--prewarm-background PROFILE]
//!                                     as --prewarm, but serve while booting;
//!                                     `health` answers ready:false until done
//!             [--results DIR]         persist every completed served sweep
//!                                     report under DIR (atomic write+rename)
//!             [--telem-out FILE]      on drain, flush the request-span
//!                                     timeline (Chrome trace JSON + final
//!                                     metric snapshot) to FILE atomically
//!             [--no-telem]            disable telemetry entirely (the
//!                                     detached half of the overhead A/B)
//!             [--queue-limit N]       queue depth at which `health` reports
//!                                     not ready (default 256)
//!             [--selfcheck PROFILE]   no server: run the in-process
//!                                     transparency gate (served report must
//!                                     be byte-identical to the cold batch
//!                                     report) and exit 0/1
//! ```

use cheri_bench::cli::{self, Cli};
use cheri_serve::{signal, transparency_gate, JobEngine, Server, ServerConfig, Stop, WorkerPool};
use cheri_sweep::Profile;
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "cheri-serve [--addr HOST:PORT] [--workers N] [--no-cache] [--no-warm] \
     [--prewarm smoke|full|paper] [--prewarm-background smoke|full|paper] [--results DIR] \
     [--telem-out FILE] [--no-telem] [--queue-limit N] [--selfcheck smoke|full|paper]";

struct Args {
    addr: String,
    workers: usize,
    cache: bool,
    warm: bool,
    prewarm: Option<Profile>,
    prewarm_background: Option<Profile>,
    results: Option<PathBuf>,
    telem: bool,
    telem_out: Option<PathBuf>,
    queue_limit: u64,
    selfcheck: Option<Profile>,
}

fn fail(msg: &str) -> ! {
    cli::fail("cheri-serve", msg)
}

fn parse_args() -> Args {
    let mut cli = Cli::new("cheri-serve", USAGE);
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        workers: cheri_sweep::default_threads(),
        cache: true,
        warm: true,
        prewarm: None,
        prewarm_background: None,
        results: None,
        telem: true,
        telem_out: None,
        queue_limit: 256,
        selfcheck: None,
    };
    let profile = |cli: &mut Cli, flag: &str| -> Profile {
        let name = cli.value(flag);
        Profile::parse(&name)
            .unwrap_or_else(|| cli.usage_exit(&format!("unknown profile '{name}'")))
    };
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--addr" => args.addr = cli.value("--addr"),
            "--workers" => args.workers = cli.positive("--workers"),
            "--no-cache" => args.cache = false,
            "--no-warm" => args.warm = false,
            "--prewarm" => args.prewarm = Some(profile(&mut cli, "--prewarm")),
            "--prewarm-background" => {
                args.prewarm_background = Some(profile(&mut cli, "--prewarm-background"));
            }
            "--results" => args.results = Some(PathBuf::from(cli.value("--results"))),
            "--telem-out" => args.telem_out = Some(PathBuf::from(cli.value("--telem-out"))),
            "--no-telem" => args.telem = false,
            "--queue-limit" => args.queue_limit = cli.positive("--queue-limit") as u64,
            "--selfcheck" => args.selfcheck = Some(profile(&mut cli, "--selfcheck")),
            other => cli.unknown(other),
        }
    }
    args
}

/// `--selfcheck`: no socket — build the engine, serve the profile
/// through it in-process, and gate byte-identity against the cold batch
/// path. Exit 0 on identity, 1 on divergence.
fn selfcheck(args: &Args, profile: Profile) -> ! {
    let engine = Arc::new(JobEngine::new(args.cache, args.warm));
    let workers = WorkerPool::new(args.workers);
    let stop = Stop::new(false);
    let prewarmed = engine.prewarm(profile, &workers, &stop);
    println!(
        "cheri-serve: selfcheck {}: {prewarmed} snapshot(s) prewarmed, serving...",
        profile.name()
    );
    match transparency_gate(&engine, &workers, profile) {
        Ok(report) => {
            let stats = engine.stats(0);
            println!(
                "selfcheck OK: served report ({} jobs; {} cached, {} warm, {} cold) is \
                 byte-identical to the cold batch report",
                report.jobs.len(),
                stats.cache_hits,
                stats.warm_runs,
                stats.cold_runs
            );
            workers.shutdown();
            std::process::exit(0);
        }
        Err(e) => fail(&e),
    }
}

fn main() {
    let args = parse_args();
    if let Some(profile) = args.selfcheck {
        selfcheck(&args, profile);
    }
    signal::install();
    let cfg = ServerConfig {
        workers: args.workers,
        cache: args.cache,
        warm: args.warm,
        results_dir: args.results.clone(),
        watch_signals: true,
        telem: args.telem,
        telem_out: args.telem_out.clone(),
        queue_limit: args.queue_limit,
    };
    let server =
        Server::bind(&args.addr, cfg).unwrap_or_else(|e| fail(&format!("bind {}: {e}", args.addr)));
    let addr = server.local_addr().unwrap_or_else(|e| fail(&format!("local_addr: {e}")));
    // CI and scripts scrape this exact line for the ephemeral port.
    println!("cheri-serve: listening on {addr}");
    println!(
        "cheri-serve: {} worker(s), cache {}, warm execution {}",
        args.workers,
        if args.cache { "on" } else { "off" },
        if args.warm { "on" } else { "off" }
    );
    if let Some(profile) = args.prewarm {
        let added = server.prewarm(profile);
        println!("cheri-serve: prewarmed {added} snapshot(s) for the {} profile", profile.name());
    }
    if let Some(profile) = args.prewarm_background {
        server.prewarm_background(profile);
        println!(
            "cheri-serve: prewarming the {} profile in the background (health reports ready \
             once done)",
            profile.name()
        );
    }
    match server.serve() {
        Ok(()) => {
            if let Some(path) = &args.telem_out {
                println!("cheri-serve: telemetry flushed to {}", path.display());
            }
            println!("cheri-serve: drained, exiting");
        }
        Err(e) => fail(&format!("serve: {e}")),
    }
}
