//! Figure 1 reproduction: the 256-bit memory capability layout, shown by
//! serialising a real capability and annotating its words.

use cheri_core::{Capability, Perms};

fn main() {
    println!("== Figure 1: Memory capability (256 bits) ==\n");
    println!("  permissions (31 bits) | reserved (97 bits)");
    println!("  base   (64 bits)");
    println!("  length (64 bits)\n");

    let cap = Capability::new(
        0x0000_1234_5678_9000,
        0x1000,
        Perms::LOAD | Perms::STORE | Perms::LOAD_CAP,
    )
    .expect("valid region");
    let bytes = cap.to_bytes();
    println!("example: {cap}");
    println!("tag (out of band, in the tag table): {}", u8::from(cap.tag()));
    let fields = ["perms+reserved", "reserved", "base", "length"];
    for (i, name) in fields.iter().enumerate() {
        let w = u64::from_be_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        println!("  word {i} ({name:<15}): {w:#018x}");
    }
    let restored = Capability::from_bytes(&bytes, cap.tag());
    assert_eq!(restored, cap, "round-trip must be exact");
    println!("\nround-trip through the 256-bit image: exact");
    println!(
        "compressed 128-bit form (Section 7's '128b CHERI'): {}",
        cheri_core::Compressed128::try_from_cap(&cap).expect("aligned region")
    );
}
