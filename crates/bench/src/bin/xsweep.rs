//! `xsweep` — the parallel experiment-sweep runner and CI regression
//! gate.
//!
//! Expands the full experiment matrix (workload × pointer strategy ×
//! capability width × tag-cache config) into independent jobs, shards
//! them across `--jobs N` worker threads (each job owns its own
//! machine), and writes a deterministic JSON report of every job's
//! architectural counters. The report is bit-identical regardless of
//! thread count.
//!
//! ```text
//! xsweep [--profile smoke|full|paper]   matrix preset (default: full)
//!        [--jobs N]                     worker threads (default: host)
//!        [--out PATH]                   report path (default: results/sweep.json)
//!        [--check PATH]                 gate against a baseline; nonzero exit on drift
//!        [--bless [PATH]]               (re)write the golden baseline
//! ```

use cheri_sweep::{
    check_reports, comparisons, profile_matrix, render_drifts, run_specs, Profile, SweepReport,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    profile: Profile,
    jobs: usize,
    out: PathBuf,
    check: Option<PathBuf>,
    bless: Option<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("xsweep: {msg}");
    eprintln!(
        "usage: xsweep [--profile smoke|full|paper] [--jobs N] [--out PATH] \
         [--check BASELINE] [--bless [PATH]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        profile: Profile::Full,
        jobs: cheri_sweep::default_threads(),
        out: PathBuf::from("results/sweep.json"),
        check: None,
        bless: None,
    };
    let mut i = 0;
    let mut blessed = false;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| usage(&format!("{} requires a value", argv[i])))
        };
        match argv[i].as_str() {
            "--profile" => {
                args.profile = Profile::parse(value(i))
                    .unwrap_or_else(|| usage(&format!("unknown profile '{}'", value(i))));
                i += 2;
            }
            "--jobs" => {
                args.jobs = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => usage("--jobs requires a positive integer"),
                };
                i += 2;
            }
            "--out" => {
                args.out = PathBuf::from(value(i));
                i += 2;
            }
            "--check" => {
                args.check = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--bless" => {
                blessed = true;
                // Optional path operand.
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    args.bless = Some(PathBuf::from(v));
                    i += 2;
                } else {
                    i += 1;
                }
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if blessed && args.bless.is_none() {
        args.bless = Some(PathBuf::from(format!("baselines/sweep-{}.json", args.profile.name())));
    }
    args
}

fn write_report(path: &Path, text: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| usage(&format!("cannot create {}: {e}", dir.display())));
    }
    std::fs::write(path, text)
        .unwrap_or_else(|e| usage(&format!("cannot write {}: {e}", path.display())));
}

fn main() {
    let args = parse_args();
    let specs = profile_matrix(args.profile);
    println!(
        "== xsweep: {} jobs ({} profile) on {} thread{} ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let results = run_specs(&specs, args.jobs);
    let wall = t0.elapsed();
    let report = SweepReport::from_results(args.profile.name(), &results);

    println!("{:<28} {:>14} {:>14} {:>9} {:>9}", "job", "instructions", "cycles", "l1d%", "tag%");
    for job in &report.jobs {
        let bp = |name: &str| job.counters.get(name).copied().unwrap_or(0) as f64 / 100.0;
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}% {:>8.2}%",
            job.key,
            job.counters.get("sim.instructions").copied().unwrap_or(0),
            job.counters.get("cycles.total").copied().unwrap_or(0),
            bp("cache.l1d.hit_rate_bp"),
            bp("tag.cache.hit_rate_bp"),
        );
    }
    let total_instr: u64 =
        report.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    println!(
        "\n{} jobs, {total_instr} guest instructions in {:.2}s wall ({:.1} M instr/s aggregate)",
        report.jobs.len(),
        wall.as_secs_f64(),
        total_instr as f64 / wall.as_secs_f64() / 1e6,
    );

    let text = report.to_json();
    write_report(&args.out, &text);
    println!("report: {}", args.out.display());

    if let Some(path) = &args.bless {
        write_report(path, &text);
        println!("blessed baseline: {}", path.display());
    }

    if let Some(path) = &args.check {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline {}: {e}", path.display())));
        let baseline = SweepReport::from_json(&baseline_text)
            .unwrap_or_else(|e| usage(&format!("bad baseline {}: {e}", path.display())));
        let drifts = check_reports(&baseline, &report);
        if drifts.is_empty() {
            println!(
                "check: OK — {} comparisons against {} within tolerance",
                comparisons(&baseline),
                path.display()
            );
        } else {
            println!(
                "check: FAILED — {} drift{} vs {}\n",
                drifts.len(),
                if drifts.len() == 1 { "" } else { "s" },
                path.display()
            );
            print!("{}", render_drifts(&drifts));
            println!(
                "\n(intentional? re-bless with: xsweep --profile {} --bless)",
                args.profile.name()
            );
            std::process::exit(1);
        }
    }
}
