//! `xsweep` — the parallel experiment-sweep runner and CI regression
//! gate.
//!
//! Expands the full experiment matrix (workload × pointer strategy ×
//! capability width × tag-cache config) into independent jobs, shards
//! them across `--jobs N` worker threads (each job owns its own
//! machine), and writes a deterministic JSON report of every job's
//! architectural counters. The report is bit-identical regardless of
//! thread count.
//!
//! ```text
//! xsweep [--profile smoke|full|paper]   matrix preset (default: full)
//!        [--workloads W1,W2,...]        restrict every mode to the named
//!                                       workloads (comma-separated canonical
//!                                       names); --check gates only their jobs
//!        [--jobs N]                     worker threads (default: host)
//!        [--out PATH]                   report path (default: results/sweep.json)
//!        [--check PATH]                 gate against a baseline; nonzero exit on drift
//!        [--bless [PATH]]               (re)write the golden baseline
//!        [--perf [PATH]]                time the matrix with the simulator's block
//!                                       cache on vs off, verify the two reports are
//!                                       identical, and write a throughput report
//!                                       (default: results/perf.json)
//!        [--warm]                       run every job cold (snapshotting at the
//!                                       phase-2 boundary), then again warm-started
//!                                       from the snapshot; assert the two reports
//!                                       are byte-identical and record the speedup
//!        [--prof]                       run every job plain and then with the
//!                                       symbolized guest profiler attached; assert
//!                                       the two reports are byte-identical and
//!                                       write per-job profiles (.prof.json,
//!                                       .folded, .timeline.json) to results/prof/
//! ```
//!
//! When the `--perf` transparency assert, the `--warm` equality assert,
//! or the `--check` gate fails, the offending jobs' machine+kernel
//! snapshots are written as `results/divergence-*.json` for offline
//! triage with `snapreplay`.

use cheri_bench::cli::{self, Cli};
use cheri_bench::parse_workloads_csv;
use cheri_snap::Snapshot;
use cheri_sweep::{
    check_reports, comparisons, profile_matrix, render_drifts, run_indexed, run_matrix,
    run_spec_final_snap, run_spec_resume, run_spec_split, run_specs, run_specs_block_cache,
    run_specs_profiled, JobRecord, JobResult, JobSpec, Profile, SweepReport,
};
use cheri_trace::json::{self, Json};
use cheri_work::Workload;
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "xsweep [--profile smoke|full|paper] [--workloads W1,W2,...] [--jobs N] \
     [--out PATH] [--check BASELINE] [--bless [PATH]] [--perf [PATH]] [--warm] [--prof]";

struct Args {
    profile: Profile,
    workloads: Option<Vec<Workload>>,
    jobs: usize,
    out: PathBuf,
    check: Option<PathBuf>,
    bless: Option<PathBuf>,
    perf: Option<PathBuf>,
    warm: bool,
    prof: bool,
}

/// A runtime failure on a well-formed invocation (unreadable baseline,
/// failed gate, divergence): exit 1, distinct from the scanner's exit 2
/// so scripts can tell "you called me wrong" from "the run found a
/// problem".
fn fail(msg: &str) -> ! {
    cli::fail("xsweep", msg)
}

fn parse_args() -> Args {
    let mut cli = Cli::new("xsweep", USAGE);
    let mut args = Args {
        profile: Profile::Full,
        workloads: None,
        jobs: cheri_sweep::default_threads(),
        out: PathBuf::from("results/sweep.json"),
        check: None,
        bless: None,
        perf: None,
        warm: false,
        prof: false,
    };
    let mut blessed = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--profile" => {
                let name = cli.value("--profile");
                args.profile = Profile::parse(&name)
                    .unwrap_or_else(|| cli.usage_exit(&format!("unknown profile '{name}'")));
            }
            "--workloads" => {
                let csv = cli.value("--workloads");
                args.workloads = Some(parse_workloads_csv(&cli, &csv));
            }
            "--jobs" => args.jobs = cli.positive("--jobs"),
            "--out" => args.out = PathBuf::from(cli.value("--out")),
            "--check" => args.check = Some(PathBuf::from(cli.value("--check"))),
            // --bless and --perf take an optional path operand.
            "--bless" => {
                blessed = true;
                args.bless = cli.opt_value().map(PathBuf::from);
            }
            "--perf" => {
                args.perf = Some(
                    cli.opt_value()
                        .map_or_else(|| PathBuf::from("results/perf.json"), PathBuf::from),
                );
            }
            "--warm" => args.warm = true,
            "--prof" => args.prof = true,
            other => cli.unknown(other),
        }
    }
    if blessed && args.bless.is_none() {
        args.bless = Some(PathBuf::from(format!("baselines/sweep-{}.json", args.profile.name())));
    }
    if blessed && args.workloads.is_some() {
        cli.usage_exit("--bless writes the whole matrix; it cannot be combined with --workloads");
    }
    if args.warm && args.perf.is_some() {
        cli.usage_exit("--warm and --perf are separate timing modes; pass one at a time");
    }
    if args.prof && (args.warm || args.perf.is_some()) {
        cli.usage_exit("--prof is its own mode; pass it without --perf/--warm");
    }
    args
}

fn write_report(path: &Path, text: &str) {
    cli::write_file("xsweep", path, text);
}

/// Expands the profile's matrix, restricted to the `--workloads`
/// selection when one was given. Every mode (default, `--perf`,
/// `--warm`, `--prof`) draws its specs from here, so the filter means
/// the same thing everywhere.
fn selected_matrix(args: &Args) -> Vec<JobSpec> {
    let specs = profile_matrix(args.profile);
    match &args.workloads {
        None => specs,
        Some(ws) => specs.into_iter().filter(|s| ws.contains(&s.workload)).collect(),
    }
}

/// Writes a divergence snapshot under `results/` with the job key
/// flattened into the file name, and returns the path.
fn write_divergence(key: &str, suffix: &str, snap: &Snapshot) -> PathBuf {
    let name = format!("divergence-{}{suffix}.json", key.replace('/', "-"));
    let path = Path::new("results").join(name);
    write_report(&path, &snap.to_json());
    eprintln!("xsweep: divergence snapshot: {}", path.display());
    path
}

/// The timing sections of `results/perf.json`. Each timing mode owns
/// its own section and preserves the other's numbers when rewriting the
/// file (as long as the profile matches — timings from a different
/// matrix would be incomparable).
#[derive(Default)]
struct PerfDoc {
    /// `--perf`: (wall_ms, instr_per_sec) with the block cache on.
    block_cache: Option<(u64, u64)>,
    /// `--perf`: (wall_ms, instr_per_sec) with the block cache off.
    interpreter: Option<(u64, u64)>,
    /// `--warm`: (cold_job_ms, warm_job_ms, speedup_x100, snapshots).
    warm: Option<(u64, u64, u64, u64)>,
}

/// Reads the sections of an existing perf report so a `--perf` run does
/// not clobber `--warm` numbers and vice versa. Unreadable or
/// mismatched-profile files yield an empty doc (the new run rewrites
/// from scratch).
fn read_perf_doc(path: &Path, profile: &str) -> PerfDoc {
    let Ok(text) = std::fs::read_to_string(path) else { return PerfDoc::default() };
    let Ok(v) = json::parse(&text) else { return PerfDoc::default() };
    let Some(obj) = v.as_obj() else { return PerfDoc::default() };
    if obj.get("profile").and_then(Json::as_str) != Some(profile) {
        return PerfDoc::default();
    }
    let pair = |name: &str, a: &str, b: &str| -> Option<(u64, u64)> {
        let sec = obj.get(name)?.as_obj()?;
        Some((sec.get(a)?.as_u64()?, sec.get(b)?.as_u64()?))
    };
    let warm = || -> Option<(u64, u64, u64, u64)> {
        let sec = obj.get("warm")?.as_obj()?;
        Some((
            sec.get("cold_job_ms")?.as_u64()?,
            sec.get("warm_job_ms")?.as_u64()?,
            sec.get("speedup_x100")?.as_u64()?,
            sec.get("snapshots")?.as_u64()?,
        ))
    };
    PerfDoc {
        block_cache: pair("block_cache", "wall_ms", "instr_per_sec"),
        interpreter: pair("interpreter", "wall_ms", "instr_per_sec"),
        warm: warm(),
    }
}

/// Serialises the perf report. Integer-only JSON, matching the sweep
/// report's convention: wall times are host-dependent measurements, so
/// this file is NOT a regression-gate baseline — it is the recorded
/// evidence for the speedup claims in EXPERIMENTS.md.
fn write_perf_doc(
    path: &Path,
    profile: &str,
    jobs: usize,
    threads: usize,
    guest_instructions: u64,
    doc: &PerfDoc,
) {
    let mut text = format!(
        "{{\n  \"schema\": \"cheri-perf/v1\",\n  \"profile\": \"{profile}\",\n  \
         \"jobs\": {jobs},\n  \"threads\": {threads},\n  \
         \"guest_instructions\": {guest_instructions}"
    );
    let mut pair = |name: &str, a: &str, b: &str, v: Option<(u64, u64)>| {
        if let Some((x, y)) = v {
            text.push_str(&format!(
                ",\n  \"{name}\": {{\n    \"{a}\": {x},\n    \"{b}\": {y}\n  }}"
            ));
        }
    };
    pair("block_cache", "wall_ms", "instr_per_sec", doc.block_cache);
    pair("interpreter", "wall_ms", "instr_per_sec", doc.interpreter);
    if let Some((cold, warm, speedup, snaps)) = doc.warm {
        text.push_str(&format!(
            ",\n  \"warm\": {{\n    \"cold_job_ms\": {cold},\n    \"warm_job_ms\": {warm},\n    \
             \"speedup_x100\": {speedup},\n    \"snapshots\": {snaps}\n  }}"
        ));
    }
    text.push_str("\n}\n");
    write_report(path, &text);
    println!("perf report: {}", path.display());
}

/// `--perf`: times the whole matrix with the predecoded block cache on
/// and then off, insists the two reports are byte-identical (the cache
/// is architecturally transparent, so any divergence is a simulator
/// bug), and writes an integer-only throughput report. On divergence,
/// the first offending job is re-run under both settings and its final
/// machine+kernel snapshots land in `results/` for `snapreplay`.
fn run_perf(args: &Args, path: &Path) -> ! {
    let specs = selected_matrix(args);
    println!(
        "== xsweep --perf: {} jobs ({} profile) on {} thread{}, block cache on vs off ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let time_matrix = |enabled: bool| {
        let t0 = Instant::now();
        let results = run_specs_block_cache(&specs, args.jobs, enabled);
        let wall_ms = t0.elapsed().as_millis() as u64;
        (SweepReport::from_results(args.profile.name(), &results), wall_ms)
    };
    let (report_on, wall_on_ms) = time_matrix(true);
    println!("block cache on:  {:.2}s", wall_on_ms as f64 / 1e3);
    let (report_off, wall_off_ms) = time_matrix(false);
    println!("block cache off: {:.2}s", wall_off_ms as f64 / 1e3);
    if report_on.to_json() != report_off.to_json() {
        let bad = report_on
            .jobs
            .iter()
            .zip(&report_off.jobs)
            .find(|(a, b)| a != b)
            .map_or_else(|| "<report>".to_string(), |(a, _)| a.key.clone());
        if let Some(spec) = specs.iter().find(|s| s.key() == bad) {
            for (enabled, suffix) in [(true, "-bc-on"), (false, "-bc-off")] {
                let cfg = beri_sim::MachineConfig { block_cache: enabled, ..spec.machine_config() };
                match run_spec_final_snap(spec, cfg) {
                    Ok((_, snap)) => {
                        write_divergence(&bad, suffix, &snap);
                    }
                    Err(e) => eprintln!("xsweep: re-run of {bad} failed: {e}"),
                }
            }
        }
        fail(&format!(
            "block cache changed architectural results (first diverging job: {bad}) — \
             it must be transparent; triage with snapreplay"
        ));
    }
    println!("reports identical: yes (block cache is architecturally transparent)");

    let guest_instructions: u64 =
        report_on.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    let ips = |wall_ms: u64| guest_instructions.saturating_mul(1000) / wall_ms.max(1);
    let speedup_x100 = wall_off_ms.saturating_mul(100) / wall_on_ms.max(1);
    println!(
        "\n{guest_instructions} guest instructions; {:.1} M instr/s with the block cache, \
         {:.1} M instr/s without ({}.{:02}x)",
        ips(wall_on_ms) as f64 / 1e6,
        ips(wall_off_ms) as f64 / 1e6,
        speedup_x100 / 100,
        speedup_x100 % 100,
    );

    let mut doc = read_perf_doc(path, args.profile.name());
    doc.block_cache = Some((wall_on_ms, ips(wall_on_ms)));
    doc.interpreter = Some((wall_off_ms, ips(wall_off_ms)));
    write_perf_doc(path, args.profile.name(), specs.len(), args.jobs, guest_instructions, &doc);
    std::process::exit(0);
}

/// One `--warm` cell: the cold run (which captured the warm-start
/// snapshot at the phase-2 boundary), the warm-started rerun, and the
/// per-job timings. The snapshot is retained only if the two runs
/// disagreed, so peak memory stays one snapshot per worker thread.
struct WarmCell {
    cold: JobResult,
    warm: JobResult,
    cold_ns: u64,
    warm_ns: u64,
    evidence: Option<Box<Snapshot>>,
}

/// `--warm`: runs every job cold (snapshotting once at the allocation →
/// computation boundary), then warm-started from its snapshot, asserts
/// the two reports are byte-identical in-process, and records the
/// aggregate warm-start speedup in the perf report.
fn run_warm(args: &Args) -> ! {
    let specs = selected_matrix(args);
    println!(
        "== xsweep --warm: {} jobs ({} profile) on {} thread{}, cold + warm-started ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let cells = run_indexed(specs.len(), args.jobs, |i| {
        let spec = &specs[i];
        let cfg = spec.machine_config();
        let t0 = Instant::now();
        let (cold, snap) =
            run_spec_split(spec, cfg.clone()).unwrap_or_else(|e| panic!("{}: {e}", spec.key()));
        let cold_ns = t0.elapsed().as_nanos() as u64;
        match snap {
            // Finished before the phase boundary: nothing to warm-start.
            None => WarmCell { warm: cold.clone(), cold, cold_ns, warm_ns: 0, evidence: None },
            Some(snap) => {
                let t1 = Instant::now();
                let warm = run_spec_resume(spec, &snap, cfg.block_cache)
                    .unwrap_or_else(|e| panic!("{} (warm): {e}", spec.key()));
                let warm_ns = t1.elapsed().as_nanos() as u64;
                let diverged = JobRecord::from_result(&cold) != JobRecord::from_result(&warm);
                WarmCell {
                    cold,
                    warm,
                    cold_ns,
                    warm_ns,
                    evidence: diverged.then(|| Box::new(snap)),
                }
            }
        }
    });

    let diverged: Vec<&WarmCell> = cells.iter().filter(|c| c.evidence.is_some()).collect();
    for cell in &diverged {
        if let Some(snap) = &cell.evidence {
            write_divergence(&cell.cold.spec.key(), "", snap);
        }
    }
    if let Some(first) = diverged.first() {
        fail(&format!(
            "warm-started results diverged from cold on {} job(s), first: {} — \
             snapshot/restore must be exact; triage with snapreplay",
            diverged.len(),
            first.cold.spec.key()
        ));
    }

    let colds: Vec<JobResult> = cells.iter().map(|c| c.cold.clone()).collect();
    let warms: Vec<JobResult> = cells.iter().map(|c| c.warm.clone()).collect();
    let cold_report = SweepReport::from_results(args.profile.name(), &colds);
    let warm_report = SweepReport::from_results(args.profile.name(), &warms);
    assert_eq!(
        cold_report.to_json(),
        warm_report.to_json(),
        "per-job records agree but serialised reports differ — report serialisation bug"
    );
    println!("reports identical: yes (warm-started runs reproduce the cold runs byte-for-byte)");

    let snapshots = cells.iter().filter(|c| c.warm_ns != 0).count() as u64;
    let cold_job_ms: u64 = cells.iter().map(|c| c.cold_ns / 1_000_000).sum();
    let warm_job_ms: u64 =
        cells.iter().filter(|c| c.warm_ns != 0).map(|c| c.warm_ns / 1_000_000).sum();
    let speedup_x100 = cold_job_ms.saturating_mul(100) / warm_job_ms.max(1);
    let guest_instructions: u64 =
        cold_report.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    println!(
        "\n{snapshots}/{} jobs warm-started; {:.2}s aggregate cold job time vs {:.2}s warm \
         ({}.{:02}x warm-start speedup)",
        cells.len(),
        cold_job_ms as f64 / 1e3,
        warm_job_ms as f64 / 1e3,
        speedup_x100 / 100,
        speedup_x100 % 100,
    );

    let text = cold_report.to_json();
    write_report(&args.out, &text);
    println!("report: {}", args.out.display());

    let path = Path::new("results/perf.json");
    let mut doc = read_perf_doc(path, args.profile.name());
    doc.warm = Some((cold_job_ms, warm_job_ms, speedup_x100, snapshots));
    write_perf_doc(path, args.profile.name(), specs.len(), args.jobs, guest_instructions, &doc);
    std::process::exit(0);
}

/// `--prof`: runs the whole matrix plain and then with a symbolized
/// guest profiler attached to every job, insists the two sweep reports
/// are byte-identical (profiling is observational — any divergence is
/// a profiler bug), and writes each job's profile as
/// `results/prof/<key>.prof.json` plus flamegraph collapsed stacks
/// (`.folded`) and the Perfetto/Chrome trace-event timeline
/// (`.timeline.json`). On divergence the first offending job's final
/// machine+kernel snapshot lands in `results/` for `snapreplay`.
fn run_prof(args: &Args) -> ! {
    let specs = selected_matrix(args);
    println!(
        "== xsweep --prof: {} jobs ({} profile) on {} thread{}, plain vs profiled ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let plain = run_specs(&specs, args.jobs);
    let report_plain = SweepReport::from_results(args.profile.name(), &plain);
    let profiled = run_specs_profiled(&specs, args.jobs);
    let prof_results: Vec<JobResult> = profiled.iter().map(|(r, _)| r.clone()).collect();
    let report_prof = SweepReport::from_results(args.profile.name(), &prof_results);
    if report_plain.to_json() != report_prof.to_json() {
        let bad = report_plain
            .jobs
            .iter()
            .zip(&report_prof.jobs)
            .find(|(a, b)| a != b)
            .map_or_else(|| "<report>".to_string(), |(a, _)| a.key.clone());
        if let Some(spec) = specs.iter().find(|s| s.key() == bad) {
            match run_spec_final_snap(spec, spec.machine_config()) {
                Ok((_, snap)) => {
                    write_divergence(&bad, "-plain", &snap);
                }
                Err(e) => eprintln!("xsweep: re-run of {bad} failed: {e}"),
            }
        }
        fail(&format!(
            "profiling changed architectural results (first diverging job: {bad}) — \
             it must be observational; triage with snapreplay"
        ));
    }
    println!("reports identical: yes (profiling is observationally transparent)\n");

    let dir = Path::new("results/prof");
    println!("{:<28} {:>14} {:>6}  hottest function", "job", "retired", "funcs");
    for (result, profile) in &profiled {
        let key = result.spec.key();
        let flat = key.replace('/', "-");
        write_report(&dir.join(format!("{flat}.prof.json")), &profile.to_json());
        write_report(&dir.join(format!("{flat}.folded")), &profile.folded_output());
        write_report(&dir.join(format!("{flat}.timeline.json")), &profile.timeline_json());
        let hottest = profile.functions.first().map_or("-", |f| f.name.as_str());
        println!(
            "{key:<28} {:>14} {:>6}  {hottest}",
            profile.total.retired,
            profile.functions.len()
        );
    }
    println!("\nper-job profiles: {}", dir.display());

    write_report(&args.out, &report_plain.to_json());
    println!("report: {}", args.out.display());
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(path) = args.perf.clone() {
        run_perf(&args, &path);
    }
    if args.warm {
        run_warm(&args);
    }
    if args.prof {
        run_prof(&args);
    }
    let specs = selected_matrix(&args);
    println!(
        "== xsweep: {} jobs ({} profile) on {} thread{} ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    // Unfiltered runs use the library form of this default mode — the
    // same call the cheri-serve transparency gate compares a served
    // sweep against. A --workloads selection runs just its specs.
    let report = match &args.workloads {
        None => run_matrix(args.profile, args.jobs),
        Some(_) => SweepReport::from_results(args.profile.name(), &run_specs(&specs, args.jobs)),
    };
    let wall = t0.elapsed();

    println!("{:<28} {:>14} {:>14} {:>9} {:>9}", "job", "instructions", "cycles", "l1d%", "tag%");
    for job in &report.jobs {
        let bp = |name: &str| job.counters.get(name).copied().unwrap_or(0) as f64 / 100.0;
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}% {:>8.2}%",
            job.key,
            job.counters.get("sim.instructions").copied().unwrap_or(0),
            job.counters.get("cycles.total").copied().unwrap_or(0),
            bp("cache.l1d.hit_rate_bp"),
            bp("tag.cache.hit_rate_bp"),
        );
    }
    let total_instr: u64 =
        report.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    println!(
        "\n{} jobs, {total_instr} guest instructions in {:.2}s wall ({:.1} M instr/s aggregate)",
        report.jobs.len(),
        wall.as_secs_f64(),
        total_instr as f64 / wall.as_secs_f64() / 1e6,
    );

    let text = report.to_json();
    write_report(&args.out, &text);
    println!("report: {}", args.out.display());

    if let Some(path) = &args.bless {
        write_report(path, &text);
        println!("blessed baseline: {}", path.display());
    }

    if let Some(path) = &args.check {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {}: {e}", path.display())));
        let mut baseline = SweepReport::from_json(&baseline_text)
            .unwrap_or_else(|e| fail(&format!("bad baseline {}: {e}", path.display())));
        // Under a --workloads selection, gate only the selected
        // workloads' jobs: the deselected baseline entries are absent
        // by request, not structural drift.
        if let Some(ws) = &args.workloads {
            baseline
                .jobs
                .retain(|j| ws.iter().any(|w| j.key.starts_with(&format!("{}/", w.name()))));
        }
        let drifts = check_reports(&baseline, &report);
        if drifts.is_empty() {
            println!(
                "check: OK — {} comparisons against {} within tolerance",
                comparisons(&baseline),
                path.display()
            );
        } else {
            println!(
                "check: FAILED — {} drift{} vs {}\n",
                drifts.len(),
                if drifts.len() == 1 { "" } else { "s" },
                path.display()
            );
            print!("{}", render_drifts(&drifts));
            // Snapshot the final state of the first few drifting jobs
            // so the failure is triageable offline.
            let mut dumped = Vec::new();
            for drift in &drifts {
                if dumped.len() >= 3 || dumped.contains(&drift.job) {
                    continue;
                }
                let Some(spec) = specs.iter().find(|s| s.key() == drift.job) else { continue };
                match run_spec_final_snap(spec, spec.machine_config()) {
                    Ok((_, snap)) => {
                        write_divergence(&drift.job, "", &snap);
                        dumped.push(drift.job.clone());
                    }
                    Err(e) => eprintln!("xsweep: re-run of {} failed: {e}", drift.job),
                }
            }
            println!(
                "\n(intentional? re-bless with: xsweep --profile {} --bless)",
                args.profile.name()
            );
            std::process::exit(1);
        }
    }
}
