//! `xsweep` — the parallel experiment-sweep runner and CI regression
//! gate.
//!
//! Expands the full experiment matrix (workload × pointer strategy ×
//! capability width × tag-cache config) into independent jobs, shards
//! them across `--jobs N` worker threads (each job owns its own
//! machine), and writes a deterministic JSON report of every job's
//! architectural counters. The report is bit-identical regardless of
//! thread count.
//!
//! ```text
//! xsweep [--profile smoke|full|paper]   matrix preset (default: full)
//!        [--jobs N]                     worker threads (default: host)
//!        [--out PATH]                   report path (default: results/sweep.json)
//!        [--check PATH]                 gate against a baseline; nonzero exit on drift
//!        [--bless [PATH]]               (re)write the golden baseline
//!        [--perf [PATH]]                time the matrix with the simulator's block
//!                                       cache on vs off, verify the two reports are
//!                                       identical, and write a throughput report
//!                                       (default: results/perf.json)
//! ```

use cheri_sweep::{
    check_reports, comparisons, profile_matrix, render_drifts, run_specs, run_specs_block_cache,
    Profile, SweepReport,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    profile: Profile,
    jobs: usize,
    out: PathBuf,
    check: Option<PathBuf>,
    bless: Option<PathBuf>,
    perf: Option<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("xsweep: {msg}");
    eprintln!(
        "usage: xsweep [--profile smoke|full|paper] [--jobs N] [--out PATH] \
         [--check BASELINE] [--bless [PATH]] [--perf [PATH]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        profile: Profile::Full,
        jobs: cheri_sweep::default_threads(),
        out: PathBuf::from("results/sweep.json"),
        check: None,
        bless: None,
        perf: None,
    };
    let mut i = 0;
    let mut blessed = false;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| usage(&format!("{} requires a value", argv[i])))
        };
        match argv[i].as_str() {
            "--profile" => {
                args.profile = Profile::parse(value(i))
                    .unwrap_or_else(|| usage(&format!("unknown profile '{}'", value(i))));
                i += 2;
            }
            "--jobs" => {
                args.jobs = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => usage("--jobs requires a positive integer"),
                };
                i += 2;
            }
            "--out" => {
                args.out = PathBuf::from(value(i));
                i += 2;
            }
            "--check" => {
                args.check = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--bless" => {
                blessed = true;
                // Optional path operand.
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    args.bless = Some(PathBuf::from(v));
                    i += 2;
                } else {
                    i += 1;
                }
            }
            "--perf" => {
                // Optional path operand, as for --bless.
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    args.perf = Some(PathBuf::from(v));
                    i += 2;
                } else {
                    args.perf = Some(PathBuf::from("results/perf.json"));
                    i += 1;
                }
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if blessed && args.bless.is_none() {
        args.bless = Some(PathBuf::from(format!("baselines/sweep-{}.json", args.profile.name())));
    }
    args
}

fn write_report(path: &Path, text: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| usage(&format!("cannot create {}: {e}", dir.display())));
    }
    std::fs::write(path, text)
        .unwrap_or_else(|e| usage(&format!("cannot write {}: {e}", path.display())));
}

/// `--perf`: times the whole matrix with the predecoded block cache on
/// and then off, insists the two reports are byte-identical (the cache
/// is architecturally transparent, so any divergence is a simulator
/// bug), and writes an integer-only throughput report.
fn run_perf(args: &Args, path: &Path) -> ! {
    let specs = profile_matrix(args.profile);
    println!(
        "== xsweep --perf: {} jobs ({} profile) on {} thread{}, block cache on vs off ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let time_matrix = |enabled: bool| {
        let t0 = Instant::now();
        let results = run_specs_block_cache(&specs, args.jobs, enabled);
        let wall_ms = t0.elapsed().as_millis() as u64;
        (SweepReport::from_results(args.profile.name(), &results), wall_ms)
    };
    let (report_on, wall_on_ms) = time_matrix(true);
    println!("block cache on:  {:.2}s", wall_on_ms as f64 / 1e3);
    let (report_off, wall_off_ms) = time_matrix(false);
    println!("block cache off: {:.2}s", wall_off_ms as f64 / 1e3);
    assert_eq!(
        report_on.to_json(),
        report_off.to_json(),
        "block cache changed architectural results — it must be transparent"
    );
    println!("reports identical: yes (block cache is architecturally transparent)");

    let guest_instructions: u64 =
        report_on.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    let ips = |wall_ms: u64| guest_instructions.saturating_mul(1000) / wall_ms.max(1);
    let speedup_x100 = wall_off_ms.saturating_mul(100) / wall_on_ms.max(1);
    println!(
        "\n{guest_instructions} guest instructions; {:.1} M instr/s with the block cache, \
         {:.1} M instr/s without ({}.{:02}x)",
        ips(wall_on_ms) as f64 / 1e6,
        ips(wall_off_ms) as f64 / 1e6,
        speedup_x100 / 100,
        speedup_x100 % 100,
    );

    // Integer-only JSON, matching the sweep report's convention: wall
    // times are host-dependent measurements, so this file is NOT a
    // regression-gate baseline — it is the recorded evidence for the
    // speedup claims in EXPERIMENTS.md.
    let text = format!(
        "{{\n  \"schema\": \"cheri-perf/v1\",\n  \"profile\": \"{}\",\n  \"jobs\": {},\n  \
         \"threads\": {},\n  \"guest_instructions\": {},\n  \"block_cache\": {{\n    \
         \"wall_ms\": {},\n    \"instr_per_sec\": {}\n  }},\n  \"interpreter\": {{\n    \
         \"wall_ms\": {},\n    \"instr_per_sec\": {}\n  }},\n  \"speedup_x100\": {}\n}}\n",
        args.profile.name(),
        specs.len(),
        args.jobs,
        guest_instructions,
        wall_on_ms,
        ips(wall_on_ms),
        wall_off_ms,
        ips(wall_off_ms),
        speedup_x100,
    );
    write_report(path, &text);
    println!("perf report: {}", path.display());
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(path) = args.perf.clone() {
        run_perf(&args, &path);
    }
    let specs = profile_matrix(args.profile);
    println!(
        "== xsweep: {} jobs ({} profile) on {} thread{} ==\n",
        specs.len(),
        args.profile.name(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let results = run_specs(&specs, args.jobs);
    let wall = t0.elapsed();
    let report = SweepReport::from_results(args.profile.name(), &results);

    println!("{:<28} {:>14} {:>14} {:>9} {:>9}", "job", "instructions", "cycles", "l1d%", "tag%");
    for job in &report.jobs {
        let bp = |name: &str| job.counters.get(name).copied().unwrap_or(0) as f64 / 100.0;
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}% {:>8.2}%",
            job.key,
            job.counters.get("sim.instructions").copied().unwrap_or(0),
            job.counters.get("cycles.total").copied().unwrap_or(0),
            bp("cache.l1d.hit_rate_bp"),
            bp("tag.cache.hit_rate_bp"),
        );
    }
    let total_instr: u64 =
        report.jobs.iter().filter_map(|j| j.counters.get("sim.instructions")).sum();
    println!(
        "\n{} jobs, {total_instr} guest instructions in {:.2}s wall ({:.1} M instr/s aggregate)",
        report.jobs.len(),
        wall.as_secs_f64(),
        total_instr as f64 / wall.as_secs_f64() / 1e6,
    );

    let text = report.to_json();
    write_report(&args.out, &text);
    println!("report: {}", args.out.display());

    if let Some(path) = &args.bless {
        write_report(path, &text);
        println!("blessed baseline: {}", path.display());
    }

    if let Some(path) = &args.check {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline {}: {e}", path.display())));
        let baseline = SweepReport::from_json(&baseline_text)
            .unwrap_or_else(|e| usage(&format!("bad baseline {}: {e}", path.display())));
        let drifts = check_reports(&baseline, &report);
        if drifts.is_empty() {
            println!(
                "check: OK — {} comparisons against {} within tolerance",
                comparisons(&baseline),
                path.display()
            );
        } else {
            println!(
                "check: FAILED — {} drift{} vs {}\n",
                drifts.len(),
                if drifts.len() == 1 { "" } else { "s" },
                path.display()
            );
            print!("{}", render_drifts(&drifts));
            println!(
                "\n(intentional? re-bless with: xsweep --profile {} --bless)",
                args.profile.name()
            );
            std::process::exit(1);
        }
    }
}
