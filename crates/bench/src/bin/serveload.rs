//! `serveload` — load generator and round-trip checker for a running
//! `cheri-serve` instance.
//!
//! Drives N concurrent clients against the service, measures per-request
//! latency and aggregate throughput, and merges the numbers into
//! `results/serve.json` under a named section (so warm/cold/cached runs
//! recorded one after another land in one file, PerfDoc-style). It is
//! also the end-to-end half of the transparency contract: `--expect`
//! byte-compares the served sweep report against a file on disk — CI
//! points it at the blessed batch baseline.
//!
//! ```text
//! serveload --addr HOST:PORT          the server (required)
//!           [--clients N]             concurrent clients (default 1)
//!           [--requests N]            requests per client (default 1)
//!           [--mode closed|open]      closed: each client issues its next
//!                                     request when the previous returns
//!                                     (default); open: requests fire on a
//!                                     fixed timer regardless of completions,
//!                                     each on its own connection
//!           [--rate-ms N]             open-loop firing interval (default 100)
//!           [--profile NAME]          each request is a whole sweep of this
//!                                     profile (default: smoke)
//!           [--job W/S/KB]            instead: each request is one job, e.g.
//!                                     treeadd/cheri/8
//!           [--no-cache]              ask the server to bypass its result
//!                                     cache (forces real execution)
//!           [--once]                  shorthand for --clients 1 --requests 1
//!           [--expect PATH]           byte-compare the served sweep report
//!                                     against PATH; exit 1 on mismatch
//!           [--report-out PATH]       write the served report bytes to PATH
//!           [--out PATH]              latency/throughput JSON
//!                                     (default results/serve.json)
//!           [--label NAME]            section name in --out (default "run")
//! ```

use cheri_bench::cli::{self, Cli};
use cheri_bench::latency::nearest_rank;
use cheri_bench::triage::first_json_difference;
use cheri_serve::protocol::JobParts;
use cheri_serve::Client;
use cheri_sweep::Profile;
use cheri_trace::json::{self, Json};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const USAGE: &str = "serveload --addr HOST:PORT [--clients N] [--requests N] \
     [--mode closed|open] [--rate-ms N] [--profile NAME] [--job W/S/KB] [--no-cache] \
     [--once] [--expect PATH] [--report-out PATH] [--out PATH] [--label NAME]";

/// What each request asks the server to do.
#[derive(Clone)]
enum Work {
    Sweep(Profile),
    Job(JobParts),
}

impl Work {
    /// The human/JSON spelling recorded in the results section.
    fn describe(&self) -> String {
        match self {
            Work::Sweep(p) => format!("sweep {}", p.name()),
            Work::Job(parts) => {
                format!("job {}/{}/{}", parts.workload, parts.strategy, parts.tag_kb)
            }
        }
    }
}

struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    open_loop: bool,
    rate_ms: u64,
    work: Work,
    cache: bool,
    expect: Option<PathBuf>,
    report_out: Option<PathBuf>,
    out: PathBuf,
    label: String,
}

fn fail(msg: &str) -> ! {
    cli::fail("serveload", msg)
}

fn parse_args() -> Args {
    let mut cli = Cli::new("serveload", USAGE);
    let mut args = Args {
        addr: String::new(),
        clients: 1,
        requests: 1,
        open_loop: false,
        rate_ms: 100,
        work: Work::Sweep(Profile::Smoke),
        cache: true,
        expect: None,
        report_out: None,
        out: PathBuf::from("results/serve.json"),
        label: "run".into(),
    };
    let mut once = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--addr" => args.addr = cli.value("--addr"),
            "--clients" => args.clients = cli.positive("--clients"),
            "--requests" => args.requests = cli.positive("--requests"),
            "--mode" => match cli.value("--mode").as_str() {
                "closed" => args.open_loop = false,
                "open" => args.open_loop = true,
                other => cli.usage_exit(&format!("unknown mode '{other}' (closed|open)")),
            },
            "--rate-ms" => args.rate_ms = cli.positive("--rate-ms") as u64,
            "--profile" => {
                let name = cli.value("--profile");
                let profile = Profile::parse(&name)
                    .unwrap_or_else(|| cli.usage_exit(&format!("unknown profile '{name}'")));
                args.work = Work::Sweep(profile);
            }
            "--job" => {
                let spec = cli.value("--job");
                let mut it = spec.split('/');
                let parts = match (it.next(), it.next(), it.next(), it.next()) {
                    (Some(w), Some(s), Some(kb), None) => JobParts {
                        workload: w.to_string(),
                        strategy: s.to_string(),
                        tag_kb: kb
                            .parse()
                            .unwrap_or_else(|_| cli.usage_exit("--job tag KB must be an integer")),
                        profile: Profile::Smoke,
                    },
                    _ => cli.usage_exit("--job requires WORKLOAD/STRATEGY/TAGKB"),
                };
                // Validate the names locally before generating load.
                if let Err(e) = parts.spec() {
                    cli.usage_exit(&e);
                }
                args.work = Work::Job(parts);
            }
            "--no-cache" => args.cache = false,
            "--once" => once = true,
            "--expect" => args.expect = Some(PathBuf::from(cli.value("--expect"))),
            "--report-out" => args.report_out = Some(PathBuf::from(cli.value("--report-out"))),
            "--out" => args.out = PathBuf::from(cli.value("--out")),
            "--label" => args.label = cli.value("--label"),
            other => cli.unknown(other),
        }
    }
    if args.addr.is_empty() {
        cli.usage_exit("--addr is required");
    }
    if once {
        args.clients = 1;
        args.requests = 1;
    }
    args
}

/// One request's outcome: latency when it succeeded, the report bytes
/// if it was a sweep (kept so `--expect` can compare them), and the
/// server-assigned request id (the span lane to look for in a
/// `--telem-out` timeline; 0 against pre-telemetry servers).
struct Outcome {
    latency_us: Option<u64>,
    report: Option<String>,
    error: Option<String>,
    req: u64,
}

fn one_request(client: &mut Client, work: &Work, cache: bool) -> Outcome {
    let t0 = Instant::now();
    let done = match work {
        Work::Sweep(profile) => {
            client.sweep(*profile, cache, false, |_, _, _, _| {}).map(|(report, _)| Some(report))
        }
        Work::Job(parts) => client.job(parts.clone(), cache).map(|_| None),
    };
    let latency_us = t0.elapsed().as_micros() as u64;
    let req = client.last_req();
    match done {
        Ok(report) => Outcome { latency_us: Some(latency_us), report, error: None, req },
        Err(e) => Outcome { latency_us: None, report: None, error: Some(e), req },
    }
}

/// Closed loop: each client issues its next request when the previous
/// one returns, all on one persistent connection per client.
fn run_closed(args: &Args, tx: &mpsc::Sender<Outcome>) {
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut client = match Client::connect(&args.addr) {
                    Ok(c) => c,
                    Err(e) => {
                        let error = Some(format!("connect {}: {e}", args.addr));
                        let _ = tx.send(Outcome { latency_us: None, report: None, error, req: 0 });
                        return;
                    }
                };
                for _ in 0..args.requests {
                    let _ = tx.send(one_request(&mut client, &args.work, args.cache));
                }
            });
        }
    });
}

/// Open loop: requests fire on a fixed timer whether or not earlier
/// ones have completed, each on its own connection — the arrival rate
/// is independent of service time, so queueing at the server shows up
/// as latency here rather than as a lower request count.
fn run_open(args: &Args, tx: &mpsc::Sender<Outcome>) {
    let total = args.clients * args.requests;
    std::thread::scope(|scope| {
        for i in 0..total {
            if i != 0 {
                std::thread::sleep(Duration::from_millis(args.rate_ms));
            }
            let tx = tx.clone();
            scope.spawn(move || {
                let outcome = match Client::connect(&args.addr) {
                    Ok(mut client) => one_request(&mut client, &args.work, args.cache),
                    Err(e) => Outcome {
                        latency_us: None,
                        report: None,
                        error: Some(format!("connect {}: {e}", args.addr)),
                        req: 0,
                    },
                };
                let _ = tx.send(outcome);
            });
        }
    });
}

/// One labelled section of `results/serve.json`. All integers except
/// the `work` description, matching the workspace's integer-only
/// reporting convention; wall times are host measurements, so the file
/// is evidence for EXPERIMENTS.md, not a regression baseline.
struct Section {
    work: String,
    mode: String,
    clients: u64,
    requests: u64,
    completed: u64,
    errors: u64,
    wall_ms: u64,
    jobs_per_sec_x100: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl Section {
    fn to_json(&self) -> String {
        format!(
            "{{\n    \"work\": \"{}\",\n    \"mode\": \"{}\",\n    \"clients\": {},\n    \
             \"requests\": {},\n    \"completed\": {},\n    \"errors\": {},\n    \
             \"wall_ms\": {},\n    \"jobs_per_sec_x100\": {},\n    \"p50_us\": {},\n    \
             \"p90_us\": {},\n    \"p99_us\": {},\n    \"max_us\": {}\n  }}",
            self.work,
            self.mode,
            self.clients,
            self.requests,
            self.completed,
            self.errors,
            self.wall_ms,
            self.jobs_per_sec_x100,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us
        )
    }

    fn from_json(v: &Json) -> Option<Section> {
        let obj = v.as_obj()?;
        let s = |k: &str| obj.get(k)?.as_str().map(str::to_string);
        let u = |k: &str| obj.get(k)?.as_u64();
        Some(Section {
            work: s("work")?,
            mode: s("mode")?,
            clients: u("clients")?,
            requests: u("requests")?,
            completed: u("completed")?,
            errors: u("errors")?,
            wall_ms: u("wall_ms")?,
            jobs_per_sec_x100: u("jobs_per_sec_x100")?,
            p50_us: u("p50_us")?,
            p90_us: u("p90_us")?,
            p99_us: u("p99_us")?,
            max_us: u("max_us")?,
        })
    }
}

/// Reads the sections of an existing results file so successive runs
/// with different labels accumulate instead of clobbering each other.
fn read_sections(path: &Path) -> Vec<(String, Section)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(v) = json::parse(&text) else { return Vec::new() };
    let Some(obj) = v.as_obj() else { return Vec::new() };
    let Some(sections) = obj.get("sections").and_then(Json::as_obj) else { return Vec::new() };
    sections
        .iter()
        .filter_map(|(label, v)| Section::from_json(v).map(|s| (label.clone(), s)))
        .collect()
}

fn write_results(path: &Path, label: &str, section: Section) {
    let mut sections = read_sections(path);
    sections.retain(|(l, _)| l != label);
    sections.push((label.to_string(), section));
    sections.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut text = String::from("{\n  \"schema\": \"cheri-serveload/v1\",\n  \"sections\": {");
    for (i, (label, section)) in sections.iter().enumerate() {
        if i != 0 {
            text.push(',');
        }
        text.push_str(&format!("\n  \"{label}\": {}", section.to_json()));
    }
    text.push_str("\n  }\n}\n");
    cli::write_file("serveload", path, &text);
    println!("load report: {}", path.display());
}

fn main() {
    let args = parse_args();
    let (tx, rx) = mpsc::channel::<Outcome>();
    let t0 = Instant::now();
    if args.open_loop {
        run_open(&args, &tx);
    } else {
        run_closed(&args, &tx);
    }
    drop(tx);
    let outcomes: Vec<Outcome> = rx.into_iter().collect();
    let wall_ms = (t0.elapsed().as_millis() as u64).max(1);

    let mut latencies: Vec<u64> = outcomes.iter().filter_map(|o| o.latency_us).collect();
    latencies.sort_unstable();
    let errors: Vec<&String> = outcomes.iter().filter_map(|o| o.error.as_ref()).collect();
    for e in errors.iter().take(3) {
        eprintln!("serveload: request failed: {e}");
    }
    let completed = latencies.len() as u64;
    let section = Section {
        work: args.work.describe(),
        mode: if args.open_loop { "open".into() } else { "closed".into() },
        clients: args.clients as u64,
        requests: args.requests as u64,
        completed,
        errors: errors.len() as u64,
        wall_ms,
        jobs_per_sec_x100: completed.saturating_mul(100_000) / wall_ms,
        p50_us: nearest_rank(&latencies, 50),
        p90_us: nearest_rank(&latencies, 90),
        p99_us: nearest_rank(&latencies, 99),
        max_us: latencies.last().copied().unwrap_or(0),
    };
    println!(
        "== serveload: {} x{} ({} mode) against {} ==",
        section.work, section.clients, section.mode, args.addr
    );
    println!(
        "{completed}/{} completed in {wall_ms} ms ({}.{:02} jobs/s); latency p50 {} us, \
         p90 {} us, p99 {} us, max {} us",
        args.clients * args.requests,
        section.jobs_per_sec_x100 / 100,
        section.jobs_per_sec_x100 % 100,
        section.p50_us,
        section.p90_us,
        section.p99_us,
        section.max_us
    );
    // The server's request-id range for this run: grep these lanes in a
    // `--telem-out` timeline to see each request's phase breakdown.
    let reqs: Vec<u64> = outcomes.iter().map(|o| o.req).filter(|&r| r != 0).collect();
    if let (Some(lo), Some(hi)) = (reqs.iter().min(), reqs.iter().max()) {
        println!("request ids {lo}..{hi} (span lanes in the server's --telem-out timeline)");
    }
    write_results(&args.out, &args.label, section);

    // The transparency half: the last served report's exact bytes.
    let served = outcomes.iter().rev().find_map(|o| o.report.as_ref());
    if let Some(path) = &args.report_out {
        match served {
            Some(report) => {
                cli::write_file("serveload", path, report);
                println!("served report: {}", path.display());
            }
            None => fail("--report-out: no sweep report was received"),
        }
    }
    if let Some(path) = &args.expect {
        let Some(report) = served else { fail("--expect: no sweep report was received") };
        let expected = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
        if *report == expected {
            println!("expect: OK — served report is byte-identical to {}", path.display());
        } else {
            let where_ = first_json_difference(report, &expected)
                .unwrap_or_else(|| "lengths differ".to_string());
            fail(&format!(
                "served report differs from {} ({} vs {} bytes) — {where_} — the service \
                 must be transparent",
                path.display(),
                report.len(),
                expected.len()
            ));
        }
    }
    if !errors.is_empty() {
        fail(&format!("{} request(s) failed", errors.len()));
    }
}
