//! Figure 5 reproduction: percentage slowdown of CHERI relative to MIPS
//! code as the data set grows, showing the steps where the 16 KB L1, the
//! 64 KB L2, and the 1 MB TLB coverage overflow.

use beri_sim::MachineConfig;
use cheri_bench::{bar, overhead_pct, parse_trace_out};
use cheri_cc::strategy::{CapPtr, LegacyPtr, PtrStrategy};
use cheri_olden::dsl::{run_bench_with_sink, DslBench};
use cheri_olden::OldenParams;
use cheri_trace::{marker, Sink};

/// Sweep points per benchmark: the parameter values whose *baseline*
/// heaps span roughly 4 KB .. 1024 KB, like the Figure 5 x-axis.
fn sweep(bench: DslBench) -> Vec<(u32, OldenParams)> {
    let base = OldenParams::scaled();
    match bench {
        DslBench::Treeadd => (8..=16).map(|d| (d, base.with_treeadd_depth(d))).collect(),
        DslBench::Bisort => (7..=14).map(|d| (d, OldenParams { bisort_log2: d, ..base })).collect(),
        DslBench::Perimeter => {
            (7..=12).map(|d| (d, OldenParams { perimeter_levels: d, ..base })).collect()
        }
        DslBench::Mst => [16u32, 32, 64, 128, 256, 512, 1024]
            .iter()
            .map(|&n| (n, OldenParams { mst_vertices: n, ..base }))
            .collect(),
    }
}

fn main() {
    println!("== Figure 5: CHERI slowdown at different heap sizes ==");
    println!("(cache geometry: 16KB L1 / 64KB L2 / TLB covering 1MB)\n");
    // `--trace-out <path>`: stream every event of every sweep point.
    let sink = parse_trace_out();
    for bench in DslBench::ALL {
        println!("{}:", bench.name());
        println!("{:>10} {:>12} {:>10}", "param", "heap (KB)", "slowdown");
        for (param, p) in sweep(bench) {
            let mut cycles = [0u64; 2];
            let mut heap_kb = 0u64;
            let strategies: [&dyn PtrStrategy; 2] = [&LegacyPtr, &CapPtr::c256()];
            for (i, s) in strategies.iter().enumerate() {
                let cfg = MachineConfig {
                    mem_bytes: bench.mem_needed(&p, *s),
                    ..MachineConfig::default()
                };
                marker(&sink, &format!("run start: {}/{}/{}", bench.name(), s.name(), param));
                let run = run_bench_with_sink(bench, &p, *s, cfg, sink.clone())
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), s.name()));
                cycles[i] = run.total_cycles();
                if i == 0 {
                    heap_kb = run.heap_used / 1024;
                }
            }
            let slow = overhead_pct(cycles[1], cycles[0]);
            println!("{param:>10} {heap_kb:>12} {slow:>9.1}%  {}", bar(slow, 2.0));
        }
        println!();
    }
    println!("(paper: 'For very small sets, overhead is negligible. As working");
    println!(" set-size increases, capability cache pressure grows faster than");
    println!(" for unprotected code', with steps at the L1/L2/TLB capacities.)");
    if let Some(s) = &sink {
        s.borrow_mut().flush();
    }
}
