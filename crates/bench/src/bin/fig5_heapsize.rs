//! Figure 5 reproduction: percentage slowdown of CHERI relative to MIPS
//! code as the data set grows, showing the steps where the 16 KB L1, the
//! 64 KB L2, and the 1 MB TLB coverage overflow.
//!
//! A thin text view over the canonical `cheri-sweep` matrix: the sweep
//! points come from [`heapsize_sweep`] and execute on the parallel
//! sweep engine (`--jobs N`; `--trace-out` forces the serial traced
//! path).

use cheri_bench::{bar, overhead_pct, parse_jobs, parse_trace_out};
use cheri_sweep::{heapsize_sweep, run_specs, run_specs_traced, JobSpec, HEAPSIZE_STRATEGIES};
use cheri_trace::Sink;
use cheri_work::Workload;

fn main() {
    println!("== Figure 5: CHERI slowdown at different heap sizes ==");
    println!("(cache geometry: 16KB L1 / 64KB L2 / TLB covering 1MB)\n");
    // `--trace-out <path>`: stream every event of every sweep point.
    let sink = parse_trace_out();
    let specs: Vec<JobSpec> = Workload::ALL
        .into_iter()
        .flat_map(|bench| {
            heapsize_sweep(bench).into_iter().flat_map(move |(param, p)| {
                HEAPSIZE_STRATEGIES
                    .into_iter()
                    .map(move |s| JobSpec { variant: Some(param), ..JobSpec::new(bench, s, p) })
            })
        })
        .collect();
    let results = match &sink {
        Some(s) => run_specs_traced(&specs, s),
        None => run_specs(&specs, parse_jobs()),
    };

    let mut rows = results.chunks(HEAPSIZE_STRATEGIES.len());
    for bench in Workload::ALL {
        println!("{}:", bench.name());
        println!("{:>10} {:>12} {:>10}", "param", "heap (KB)", "slowdown");
        for _ in heapsize_sweep(bench) {
            let pair = rows.next().expect("one row per sweep point");
            let (base, cheri) = (&pair[0], &pair[1]);
            let param = base.spec.variant.expect("sweep point labelled");
            let heap_kb = base.run.heap_used / 1024;
            let slow = overhead_pct(cheri.run.total_cycles(), base.run.total_cycles());
            println!("{param:>10} {heap_kb:>12} {slow:>9.1}%  {}", bar(slow, 2.0));
        }
        println!();
    }
    println!("(paper: 'For very small sets, overhead is negligible. As working");
    println!(" set-size increases, capability cache pressure grows faster than");
    println!(" for unprotected code', with steps at the L1/L2/TLB capacities.)");
    if let Some(s) = &sink {
        s.borrow_mut().flush();
    }
}
