//! `trace_report` — runs one Olden workload under any pointer strategy
//! with the cheri-trace subsystem attached, prints the aggregated
//! counter/histogram table, and cross-checks the event stream against
//! the legacy per-struct counters (they must agree exactly).
//!
//! ```text
//! trace_report <bench> [--strategy <name>] [--scaled|--paper]
//!              [--jsonl <path>] [--out <snapshot.json>]
//! trace_report --diff <a.json> <b.json>
//! ```
//!
//! `--jsonl` additionally streams every event as a JSON line;
//! `--out` saves the aggregate snapshot for later comparison with
//! `--diff`, which prints per-counter deltas between two saved runs.

use cheri_bench::{params_for, parse_bench_name, parse_scale, parse_strategy};
use cheri_olden::dsl::{machine_config, run_bench_with_sink};
use cheri_trace::{marker, names, shared, AggregateSink, AnySink, JsonlSink, Sink, Snapshot};

fn usage() -> ! {
    eprintln!(
        "usage: trace_report <bisort|mst|treeadd|perimeter> [--strategy <name>]\n\
         \u{20}                   [--scaled|--paper] [--jsonl <path>] [--out <path>]\n\
         \u{20}      trace_report --diff <a.json> <b.json>\n\
         strategies: mips, ccured, ccured-elide, cheri (aka cap), cheri128"
    );
    std::process::exit(2);
}

fn load_snapshot(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    Snapshot::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not a snapshot: {e}");
        std::process::exit(2);
    })
}

/// Counter families where the aggregated event stream must reproduce
/// the legacy per-struct counters bit-for-bit.
const PARITY: &[&str] = &[
    names::INSTRUCTIONS,
    names::CAP_INSTRUCTIONS,
    names::L1I_HITS,
    names::L1I_MISSES,
    names::L1I_WRITEBACKS,
    names::L1D_HITS,
    names::L1D_MISSES,
    names::L1D_WRITEBACKS,
    names::L2_HITS,
    names::L2_MISSES,
    names::L2_WRITEBACKS,
    names::TLB_REFILLS,
    names::TAG_TABLE_READS,
    names::TAG_TABLE_WRITES,
    names::TAG_CACHE_HITS,
    names::TAG_CACHE_MISSES,
    names::TAG_CACHE_WRITEBACKS,
    names::LOADS,
    names::STORES,
    names::CAP_EXCEPTIONS,
    names::SYSCALLS,
    names::CONTEXT_SWITCHES,
    names::DOMAIN_CALLS,
    names::DOMAIN_RETURNS,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--diff") {
        let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        if paths.len() != 2 {
            usage();
        }
        let (a, b) = (load_snapshot(paths[0]), load_snapshot(paths[1]));
        let diff = a.diff(&b);
        println!("== snapshot diff: {} vs {} ==\n", paths[0], paths[1]);
        print!("{diff}");
        let changed = diff.changed().count();
        println!("\n{changed} counter(s) changed, {} total", diff.entries().len());
        return;
    }

    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} requires an argument");
                std::process::exit(2);
            })
        })
    };

    let Some(bench) = args.iter().find(|a| !a.starts_with("--")).and_then(|n| parse_bench_name(n))
    else {
        usage();
    };
    let strategy_name = flag_value("--strategy").unwrap_or_else(|| "cheri".into());
    let Some(strategy) = parse_strategy(&strategy_name) else {
        eprintln!("unknown strategy {strategy_name:?}");
        usage();
    };
    let params = params_for(parse_scale());

    // Aggregate always; tee into a JSONL stream when asked.
    let mut sinks = vec![AnySink::Aggregate(AggregateSink::new())];
    if let Some(path) = flag_value("--jsonl") {
        let jsonl = JsonlSink::create(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        });
        sinks.push(AnySink::Jsonl(jsonl));
    }
    let sink = shared(AnySink::Multi(sinks));

    marker(&Some(sink.clone()), &format!("run start: {}/{}", bench.name(), strategy.name()));
    let cfg = machine_config(bench, &params, strategy.as_ref());
    let run = run_bench_with_sink(bench, &params, strategy.as_ref(), cfg, Some(sink.clone()))
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), strategy.name()));
    marker(&Some(sink.clone()), "run end");
    sink.borrow_mut().flush();

    let aggregated = match &*sink.borrow() {
        AnySink::Multi(sinks) => match &sinks[0] {
            AnySink::Aggregate(a) => a.snapshot(),
            _ => unreachable!("aggregate is always the first sink"),
        },
        _ => unreachable!("sink is always a Multi"),
    };

    println!("== trace_report: {} [{}] ==", bench.name(), strategy.name());
    println!("exit: {:?}   cycles: {}\n", run.outcome.exit, run.outcome.stats.cycles);
    print!("{}", aggregated.render_table());

    // The acceptance property: the event stream, aggregated, equals the
    // legacy per-struct counters the kernel exported into the outcome.
    let legacy = &run.outcome.metrics;
    let mut mismatches = 0;
    for name in PARITY {
        let (ev, lg) = (aggregated.counter(name), legacy.counter(name));
        if ev != lg {
            eprintln!("PARITY MISMATCH {name}: events={ev} legacy={lg}");
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "event stream disagrees with legacy counters");
    println!("\nparity: all {} shared counters match the legacy statistics", PARITY.len());

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, aggregated.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("snapshot written to {path}");
    }
}
