//! `trace_report` — runs one Olden workload under any pointer strategy
//! with the cheri-trace subsystem attached, prints the aggregated
//! counter/histogram table, and cross-checks the event stream against
//! the legacy per-struct counters (they must agree exactly).
//!
//! ```text
//! trace_report <bench> [--strategy <name>] [--scaled|--paper]
//!              [--jsonl <path>] [--out <snapshot.json>]
//! trace_report --diff <a.json> <b.json>
//! ```
//!
//! `--jsonl` additionally streams every event as a JSON line;
//! `--out` saves the aggregate snapshot for later comparison with
//! `--diff`, which prints per-counter deltas between two saved runs.

use cheri_bench::cli::Cli;
use cheri_bench::{params_for, parse_bench_name, parse_scale, parse_strategy};
use cheri_olden::dsl::BenchSession;
use cheri_trace::{marker, names, shared, AggregateSink, AnySink, JsonlSink, Sink, Snapshot};
use cheri_work::machine_config;

const USAGE: &str = "trace_report <workload> [--strategy <name>]\n\
     \u{20}                   [--scaled|--paper] [--jsonl <path>] [--out <path>]\n\
     \u{20}      trace_report --diff <a.json> <b.json>\n\
     strategies: mips, ccured, ccured-elide, cheri (aka cap), cheri128";

fn load_snapshot(cli: &Cli, path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| cli.usage_exit(&format!("cannot read {path}: {e}")));
    Snapshot::from_json(&text)
        .unwrap_or_else(|e| cli.usage_exit(&format!("{path}: not a snapshot: {e}")))
}

/// Counter families where the aggregated event stream must reproduce
/// the legacy per-struct counters bit-for-bit.
const PARITY: &[&str] = &[
    names::INSTRUCTIONS,
    names::CAP_INSTRUCTIONS,
    names::L1I_HITS,
    names::L1I_MISSES,
    names::L1I_WRITEBACKS,
    names::L1D_HITS,
    names::L1D_MISSES,
    names::L1D_WRITEBACKS,
    names::L2_HITS,
    names::L2_MISSES,
    names::L2_WRITEBACKS,
    names::TLB_REFILLS,
    names::TAG_TABLE_READS,
    names::TAG_TABLE_WRITES,
    names::TAG_CACHE_HITS,
    names::TAG_CACHE_MISSES,
    names::TAG_CACHE_WRITEBACKS,
    names::LOADS,
    names::STORES,
    names::CAP_EXCEPTIONS,
    names::SYSCALLS,
    names::CONTEXT_SWITCHES,
    names::DOMAIN_CALLS,
    names::DOMAIN_RETURNS,
];

fn main() {
    let mut cli = Cli::new("trace_report", USAGE);
    let mut strategy_name = String::from("cheri");
    let mut jsonl_path = None;
    let mut out_path = None;
    let mut diff_mode = false;
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--strategy" => strategy_name = cli.value("--strategy"),
            "--jsonl" => jsonl_path = Some(cli.value("--jsonl")),
            "--out" => out_path = Some(cli.value("--out")),
            "--diff" => diff_mode = true,
            // The scale flags are read by parse_scale (shared across
            // the harnesses); accept them here so they aren't unknown.
            "--scaled" | "--paper" => {}
            flag if flag.starts_with("--") => cli.unknown(flag),
            operand => positional.push(operand.to_string()),
        }
    }

    if diff_mode {
        if positional.len() != 2 {
            cli.usage_exit("--diff requires exactly two snapshot paths");
        }
        let (a, b) = (load_snapshot(&cli, &positional[0]), load_snapshot(&cli, &positional[1]));
        let diff = a.diff(&b);
        println!("== snapshot diff: {} vs {} ==\n", positional[0], positional[1]);
        print!("{diff}");
        let changed = diff.changed().count();
        println!("\n{changed} counter(s) changed, {} total", diff.entries().len());
        return;
    }

    let Some(bench) = positional.first().and_then(|n| parse_bench_name(n)) else {
        cli.usage_exit("a benchmark name is required");
    };
    let Some(strategy) = parse_strategy(&strategy_name) else {
        cli.usage_exit(&format!("unknown strategy {strategy_name:?}"));
    };
    let params = params_for(parse_scale());

    // Aggregate always; tee into a JSONL stream when asked.
    let mut sinks = vec![AnySink::Aggregate(AggregateSink::new())];
    if let Some(path) = &jsonl_path {
        let jsonl = JsonlSink::create(std::path::Path::new(path))
            .unwrap_or_else(|e| cli.usage_exit(&format!("cannot create {path}: {e}")));
        sinks.push(AnySink::Jsonl(jsonl));
    }
    let sink = shared(AnySink::Multi(sinks));

    marker(&Some(sink.clone()), &format!("run start: {}/{}", bench.name(), strategy.name()));
    let cfg = machine_config(bench, &params, strategy.as_ref());
    let module = bench.module(&params);
    let run = BenchSession::start_module(&module, strategy.as_ref(), cfg, Some(sink.clone()))
        .map_err(|e| e.to_string())
        .and_then(|mut s| s.run_to_completion().map_err(|e| e.to_string()))
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), strategy.name()));
    marker(&Some(sink.clone()), "run end");
    sink.borrow_mut().flush();

    let aggregated = match &*sink.borrow() {
        AnySink::Multi(sinks) => match &sinks[0] {
            AnySink::Aggregate(a) => a.snapshot(),
            _ => unreachable!("aggregate is always the first sink"),
        },
        _ => unreachable!("sink is always a Multi"),
    };

    println!("== trace_report: {} [{}] ==", bench.name(), strategy.name());
    println!("exit: {:?}   cycles: {}\n", run.outcome.exit, run.outcome.stats.cycles);
    print!("{}", aggregated.render_table());

    // The acceptance property: the event stream, aggregated, equals the
    // legacy per-struct counters the kernel exported into the outcome.
    let legacy = &run.outcome.metrics;
    let mut mismatches = 0;
    for name in PARITY {
        let (ev, lg) = (aggregated.counter(name), legacy.counter(name));
        if ev != lg {
            eprintln!("PARITY MISMATCH {name}: events={ev} legacy={lg}");
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "event stream disagrees with legacy counters");
    println!("\nparity: all {} shared counters match the legacy statistics", PARITY.len());

    if let Some(path) = &out_path {
        std::fs::write(path, aggregated.to_json())
            .unwrap_or_else(|e| cli.usage_exit(&format!("cannot write {path}: {e}")));
        println!("snapshot written to {path}");
    }
}
