//! `servemon` — a live terminal dashboard for a running `cheri-serve`
//! instance.
//!
//! Polls the server's `metrics` (Prometheus text exposition), `health`,
//! and `stats` verbs and redraws one plain-text frame per interval:
//! jobs/s, per-origin hit rates, queue depth and worker states, latency
//! percentiles (upper bucket bounds from the streaming histograms, the
//! exact max from its gauge), and per-phase averages. No TUI
//! dependencies — the frame is ANSI clear-screen plus println.
//!
//! ```text
//! servemon --addr HOST:PORT           the server (required)
//!          [--interval-ms N]          poll interval (default 1000)
//!          [--once]                   one poll, one frame, then exit with
//!                                     0 if the server is ready, 3 if it
//!                                     answered but is not ready, 1 on any
//!                                     failure — the CI readiness probe
//!          [--json]                   with --once: emit one JSON object
//!                                     instead of the text frame
//! ```
//!
//! Percentiles shown are *upper bounds*: the latency histograms are
//! log2-bucketed, so "p95 <= 16383 us" means the 95th-percentile
//! request landed in the bucket whose range ends at 16383 us. The max
//! is exact (its own gauge). This is the honest way to render a
//! streaming histogram — see DESIGN.md §4i.

use cheri_bench::cli::{self, Cli};
use cheri_serve::protocol::{HealthSnapshot, StatsSnapshot};
use cheri_serve::Client;
use cheri_telem::{parse_exposition, Exposition, PromHist};
use cheri_trace::json::JsonWriter;
use std::time::{Duration, Instant};

const USAGE: &str = "servemon --addr HOST:PORT [--interval-ms N] [--once] [--json]";

struct Args {
    addr: String,
    interval_ms: u64,
    once: bool,
    json: bool,
}

fn fail(msg: &str) -> ! {
    cli::fail("servemon", msg)
}

fn parse_args() -> Args {
    let mut cli = Cli::new("servemon", USAGE);
    let mut args = Args { addr: String::new(), interval_ms: 1000, once: false, json: false };
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--addr" => args.addr = cli.value("--addr"),
            "--interval-ms" => args.interval_ms = cli.positive("--interval-ms") as u64,
            "--once" => args.once = true,
            "--json" => args.json = true,
            other => cli.unknown(other),
        }
    }
    if args.addr.is_empty() {
        cli.usage_exit("--addr is required");
    }
    if args.json && !args.once {
        cli.usage_exit("--json requires --once");
    }
    args
}

/// One poll of the server: exposition + health + stats.
struct Sample {
    exp: Exposition,
    health: HealthSnapshot,
    stats: StatsSnapshot,
    at: Instant,
}

fn poll(client: &mut Client) -> Result<Sample, String> {
    let text = client.metrics()?;
    let exp = parse_exposition(&text).map_err(|e| format!("bad metrics exposition: {e}"))?;
    let health = client.health()?;
    let stats = client.stats()?;
    Ok(Sample { exp, health, stats, at: Instant::now() })
}

/// The nearest-rank percentile of a cumulative-bucket histogram, as the
/// matched bucket's upper bound — or the exact max for the +Inf bucket.
/// Returns `None` for an empty histogram.
fn hist_quantile_upper(h: &PromHist, pct: u64, exact_max: Option<u64>) -> Option<u64> {
    if h.count == 0 {
        return None;
    }
    let rank = (pct.min(100) * h.count).div_ceil(100).clamp(1, h.count);
    for (le, cum) in &h.buckets {
        if *cum >= rank {
            return match le.parse::<u64>() {
                Ok(bound) => Some(bound),
                Err(_) => exact_max, // "+Inf": only the max gauge knows
            };
        }
    }
    None
}

/// Counter value or 0 (absent just means "nothing recorded yet").
fn c(exp: &Exposition, name: &str) -> u64 {
    exp.counter(name).unwrap_or(0)
}

/// `part` as a percentage of `whole` (integer, 0 when empty).
fn pct_of(part: u64, whole: u64) -> u64 {
    (part * 100).checked_div(whole).unwrap_or(0)
}

/// Jobs/s ×100: from the delta between two samples when available
/// (live view), else cumulative over the server's uptime (--once).
fn jobs_per_sec_x100(prev: Option<&Sample>, cur: &Sample) -> u64 {
    let jobs = c(&cur.exp, "serve_jobs_total");
    match prev {
        Some(p) => {
            let djobs = jobs.saturating_sub(c(&p.exp, "serve_jobs_total"));
            let dt_ms = (cur.at.duration_since(p.at).as_millis() as u64).max(1);
            djobs.saturating_mul(100_000) / dt_ms
        }
        None => jobs.saturating_mul(100_000) / cur.stats.uptime_ms.max(1),
    }
}

fn fmt_us(v: Option<u64>, exact: bool) -> String {
    match v {
        None => "-".into(),
        Some(v) if exact => format!("{v} us"),
        Some(v) => format!("<={v} us"),
    }
}

fn phase_cell(exp: &Exposition, name: &str, hist: &str, counter: &str) -> String {
    let n = c(exp, counter);
    if n == 0 {
        return format!("{name} n=0");
    }
    let sum = exp.histogram(hist).map_or(0, |h| h.sum);
    format!("{name} n={n} avg {} us", sum / n)
}

fn draw_frame(addr: &str, prev: Option<&Sample>, s: &Sample, clear: bool) {
    if clear {
        // ANSI clear + home: the whole dashboard, redrawn in place.
        print!("\x1b[2J\x1b[H");
    }
    let h = &s.health;
    let jobs = c(&s.exp, "serve_jobs_total");
    let (cached, warm, cold) = (
        c(&s.exp, "serve_jobs_cached_total"),
        c(&s.exp, "serve_jobs_warm_total"),
        c(&s.exp, "serve_jobs_cold_total"),
    );
    let jps = jobs_per_sec_x100(prev, s);
    let lat = s.exp.histogram("serve_job_latency_us");
    let max_us = s.exp.gauge("serve_job_latency_max_us");
    let q = |pct| lat.and_then(|h| hist_quantile_upper(h, pct, max_us));
    println!(
        "servemon @ {addr} | up {} ms | cheri-serve v{} ({} workers, cache {}, warm {})",
        s.stats.uptime_ms,
        if s.stats.version.is_empty() { "?" } else { &s.stats.version },
        s.stats.workers,
        if s.stats.cache_enabled { "on" } else { "off" },
        if s.stats.warm_enabled { "on" } else { "off" },
    );
    println!(
        "health   {} | prewarm {} | workers {}/{} alive | queue {}/{}",
        if h.ready { "READY" } else { "NOT READY" },
        h.prewarm,
        h.workers_alive,
        h.workers,
        h.queue_depth,
        h.queue_limit,
    );
    println!(
        "jobs     {jobs} total | cached {cached} ({}%) warm {warm} ({}%) cold {cold} ({}%) | \
         {}.{:02} jobs/s",
        pct_of(cached, jobs),
        pct_of(warm, jobs),
        pct_of(cold, jobs),
        jps / 100,
        jps % 100,
    );
    println!(
        "server   busy {}/{} workers | pool {} snapshots | cache {} results | {} requests",
        s.exp.gauge("serve_workers_busy").unwrap_or(0),
        s.stats.workers,
        s.stats.pool_entries,
        s.stats.cached_results,
        s.stats.requests,
    );
    println!(
        "latency  p50 {} | p95 {} | p99 {} | max {}",
        fmt_us(q(50), false),
        fmt_us(q(95), false),
        fmt_us(q(99), false),
        fmt_us(max_us.filter(|_| jobs > 0), true),
    );
    println!(
        "phases   {} | {} | {} | {}",
        phase_cell(&s.exp, "boot", "serve_boot_us", "serve_boots_total"),
        phase_cell(&s.exp, "restore", "serve_restore_us", "serve_restores_total"),
        phase_cell(&s.exp, "simulate", "serve_simulate_us", "serve_simulates_total"),
        phase_cell(&s.exp, "queue", "serve_queue_wait_us", "serve_queue_waits_total"),
    );
}

/// The `--once --json` frame: one machine-readable object for scripts
/// and the CI readiness probe.
fn json_frame(s: &Sample) -> String {
    let jobs = c(&s.exp, "serve_jobs_total");
    let lat = s.exp.histogram("serve_job_latency_us");
    let max_us = s.exp.gauge("serve_job_latency_max_us");
    let q = |pct| lat.and_then(|h| hist_quantile_upper(h, pct, max_us)).unwrap_or(0);
    let mut w = JsonWriter::object();
    w.bool_field("ready", s.health.ready);
    w.str_field("prewarm", &s.health.prewarm);
    w.u64_field("uptime_ms", s.stats.uptime_ms);
    w.u64_field("workers", s.health.workers);
    w.u64_field("workers_alive", s.health.workers_alive);
    w.u64_field("workers_busy", s.exp.gauge("serve_workers_busy").unwrap_or(0));
    w.u64_field("queue_depth", s.health.queue_depth);
    w.u64_field("queue_limit", s.health.queue_limit);
    w.u64_field("jobs_total", jobs);
    w.u64_field("jobs_cached", c(&s.exp, "serve_jobs_cached_total"));
    w.u64_field("jobs_warm", c(&s.exp, "serve_jobs_warm_total"));
    w.u64_field("jobs_cold", c(&s.exp, "serve_jobs_cold_total"));
    w.u64_field("jobs_per_sec_x100", jobs_per_sec_x100(None, s));
    w.u64_field("p50_us_upper", q(50));
    w.u64_field("p95_us_upper", q(95));
    w.u64_field("p99_us_upper", q(99));
    w.u64_field("max_us", max_us.unwrap_or(0));
    w.u64_field("pool_entries", s.stats.pool_entries);
    w.u64_field("cached_results", s.stats.cached_results);
    w.str_field("version", &s.stats.version);
    w.close()
}

fn main() {
    let args = parse_args();
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect {}: {e}", args.addr)),
    };
    if args.once {
        match poll(&mut client) {
            Ok(s) => {
                if args.json {
                    println!("{}", json_frame(&s));
                } else {
                    draw_frame(&args.addr, None, &s, false);
                }
                std::process::exit(if s.health.ready { 0 } else { 3 });
            }
            Err(e) => fail(&e),
        }
    }
    let mut prev: Option<Sample> = None;
    loop {
        match poll(&mut client) {
            Ok(s) => {
                draw_frame(&args.addr, prev.as_ref(), &s, true);
                prev = Some(s);
            }
            Err(e) => fail(&format!("poll: {e} (server gone?)")),
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}
