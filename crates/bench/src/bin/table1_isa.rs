//! Table 1 reproduction: list every CHERI instruction-set extension and
//! prove each executes — one assembled program exercises all 30
//! instructions on the simulator.

use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_asm::{reg, Asm};
use cheri_core::{CapInstrKind, Perms};

#[allow(clippy::too_many_lines)]
fn exercise_all() -> (u64, u64) {
    let mut a = Asm::new(0x1000);
    // Build a capability C1 over [0x4000, 0x4100) to work with.
    a.li64(reg::T0, 0x4000);
    a.cincbase(1, 0, reg::T0); // CIncBase
    a.li64(reg::T1, 0x100);
    a.csetlen(1, 1, reg::T1); // CSetLen
    a.li64(reg::T2, (Perms::ALL.bits()).into());
    a.candperm(1, 1, reg::T2); // CAndPerm
    a.cgetbase(reg::T3, 1); // CGetBase
    a.cgetlen(reg::T3, 1); // CGetLen
    a.cgettag(reg::T3, 1); // CGetTag
    a.cgetperm(reg::T3, 1); // CGetPerm
    a.cgetpcc(reg::T3, 2); // CGetPCC
    a.ctoptr(reg::T3, 1, 0); // CToPtr
    a.cfromptr(3, 0, reg::T3); // CFromPtr

    // Loads and stores of every width through C1.
    a.li64(reg::T0, 0x7f);
    a.csb(reg::T0, reg::ZERO, 0, 1); // CSB
    a.clbu(reg::T1, reg::ZERO, 0, 1); // CLBU
    a.emit(beri_sim::inst::Inst::Cheri(beri_sim::inst::CheriInst::CLoad {
        width: beri_sim::inst::Width::Byte,
        rd: reg::T1,
        cb: 1,
        rt: 0,
        imm: 0,
        unsigned: false,
    })); // CLB
    a.csh(reg::T0, reg::ZERO, 0, 1); // CSH
    a.clhu(reg::T1, reg::ZERO, 0, 1); // CLHU
    a.emit(beri_sim::inst::Inst::Cheri(beri_sim::inst::CheriInst::CLoad {
        width: beri_sim::inst::Width::Half,
        rd: reg::T1,
        cb: 1,
        rt: 0,
        imm: 0,
        unsigned: false,
    })); // CLH
    a.csw(reg::T0, reg::ZERO, 0, 1); // CSW
    a.clw(reg::T1, reg::ZERO, 0, 1); // CLW
    a.clwu(reg::T1, reg::ZERO, 0, 1); // CLWU
    a.csd(reg::T0, reg::ZERO, 1, 1); // CSD
    a.cld(reg::T1, reg::ZERO, 1, 1); // CLD

    // Capability store/load (CSC/CLC) and the tag branches.
    a.csc(1, reg::ZERO, 1, 1); // CSC (32-byte slot 1)
    a.clc(4, reg::ZERO, 1, 1); // CLC
    let tagged = a.new_label();
    let joined = a.new_label();
    a.cbts(4, tagged); // CBTS (taken)
    a.break_(1); // unreachable
    a.bind(tagged).unwrap();
    a.ccleartag(5, 4); // CClearTag
    a.cbtu(5, joined); // CBTU (taken)
    a.break_(2); // unreachable
    a.bind(joined).unwrap();

    // Atomics via capability.
    a.clld(reg::T1, reg::ZERO, 0, 1); // CLLD
    a.cscd(reg::T1, reg::ZERO, 0, 1); // CSCD

    // Capability jumps: call a tiny function through C6.
    a.li64(reg::T0, 0x2000);
    a.cincbase(6, 0, reg::T0);
    a.cjalr(7, 6); // CJALR (no delay slot)
    a.syscall(0); // return lands here
    let prog = a.finalize().unwrap();

    // Callee at 0x2000: CJR back through the link capability.
    let mut callee = Asm::new(0x2000);
    callee.cjr(7); // CJR
    let callee_prog = callee.finalize().unwrap();

    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    m.load_code(prog.base, &prog.words).unwrap();
    m.load_code(callee_prog.base, &callee_prog.words).unwrap();
    m.cpu.jump_to(prog.entry);
    loop {
        match m.step().expect("simulator fault") {
            StepResult::Continue => {}
            StepResult::Syscall => break,
            other => panic!("table1 program failed: {other:?}"),
        }
    }
    (m.stats.cap_instructions, m.stats.instructions)
}

fn main() {
    println!("== Table 1: CHERI instruction-set extensions ==\n");
    let mut group = None;
    for k in CapInstrKind::ALL {
        let g = format!("{}", k.group());
        if group.as_deref() != Some(g.as_str()) {
            println!("-- {g} --");
            group = Some(g);
        }
        println!("  {:<10} {}", k.mnemonic(), k.description());
    }
    let (cap_instrs, total) = exercise_all();
    println!(
        "\nexecuted a probe program using all {} extensions: {cap_instrs} capability instructions \
         of {total} total retired OK",
        CapInstrKind::ALL.len()
    );
    assert!(cap_instrs >= CapInstrKind::ALL.len() as u64);
}
