//! Tag-cache ablation (Section 4.2): the paper claims the 8 KB tag cache
//! "does not noticeably degrade performance". This harness sweeps the
//! tag-cache size on a capability-heavy workload and reports the
//! tag-table traffic and total cycles at each size.
//!
//! The size axis is the canonical [`TAG_ABLATION_KB`] from
//! `cheri-sweep`, executed on the parallel sweep engine (`--jobs N`).

use cheri_bench::parse_jobs;
use cheri_olden::OldenParams;
use cheri_sweep::{run_specs, JobSpec, StrategyKind, TAG_ABLATION_KB};
use cheri_work::Workload;

fn main() {
    let params = OldenParams::scaled().with_treeadd_depth(15);
    let specs: Vec<JobSpec> = TAG_ABLATION_KB
        .into_iter()
        .map(|kb| JobSpec {
            tag_cache_kb: kb,
            ..JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, params)
        })
        .collect();
    let results = run_specs(&specs, parse_jobs());

    println!("== Tag-cache size ablation (treeadd depth 15, CHERI mode) ==\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "tag cache", "tag lookups", "tag misses", "hit rate", "tag DRAM B", "cycles"
    );
    let mut big_cache_cycles = 0u64;
    let mut at_8kb = 0u64;
    for r in &results {
        let t = r.run.outcome.tag_stats;
        let cycles = r.run.total_cycles();
        if r.spec.tag_cache_kb == 8 {
            at_8kb = cycles;
        }
        big_cache_cycles = cycles; // last row is the largest cache
        println!(
            "{:>7} KB {:>12} {:>12} {:>9.1}% {:>12} {:>12}",
            r.spec.tag_cache_kb,
            t.lookups,
            t.misses,
            t.hit_rate() * 100.0,
            t.dram_tag_bytes(),
            cycles
        );
    }
    let delta = (at_8kb as f64 - big_cache_cycles as f64) / big_cache_cycles as f64 * 100.0;
    println!(
        "\n8 KB vs 64 KB tag cache: {delta:+.2}% cycles — the paper's 'does not \
         noticeably degrade performance' claim{}",
        if delta.abs() < 1.0 { " holds" } else { " needs a closer look" }
    );
}
