//! Tag-cache ablation (Section 4.2): the paper claims the 8 KB tag cache
//! "does not noticeably degrade performance". This harness sweeps the
//! tag-cache size on a capability-heavy workload and reports the
//! tag-table traffic and total cycles at each size.

use beri_sim::MachineConfig;
use cheri_cc::strategy::CapPtr;
use cheri_olden::dsl::{run_bench, DslBench};
use cheri_olden::OldenParams;

fn main() {
    let params = OldenParams::scaled().with_treeadd_depth(15);
    println!("== Tag-cache size ablation (treeadd depth 15, CHERI mode) ==\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "tag cache", "tag lookups", "tag misses", "hit rate", "tag DRAM B", "cycles"
    );
    let mut big_cache_cycles = 0u64;
    let mut at_8kb = 0u64;
    for kb in [0usize, 1, 2, 4, 8, 16, 64] {
        let cfg = MachineConfig {
            mem_bytes: DslBench::Treeadd.mem_needed(&params, &CapPtr::c256()),
            tag_cache_bytes: kb * 1024,
            ..MachineConfig::default()
        };
        let run = run_bench(DslBench::Treeadd, &params, &CapPtr::c256(), cfg).expect("run");
        let t = run.outcome.tag_stats;
        let cycles = run.total_cycles();
        if kb == 8 {
            at_8kb = cycles;
        }
        big_cache_cycles = cycles; // last row is the largest cache
        println!(
            "{:>7} KB {:>12} {:>12} {:>9.1}% {:>12} {:>12}",
            kb,
            t.lookups,
            t.misses,
            t.hit_rate() * 100.0,
            t.dram_tag_bytes(),
            cycles
        );
    }
    let delta = (at_8kb as f64 - big_cache_cycles as f64) / big_cache_cycles as f64 * 100.0;
    println!(
        "\n8 KB vs 64 KB tag cache: {delta:+.2}% cycles — the paper's 'does not \
         noticeably degrade performance' claim{}",
        if delta.abs() < 1.0 { " holds" } else { " needs a closer look" }
    );
}
