//! Capability-width ablation, in execution (not just the Figure 3 trace
//! models): Section 8 concludes "these results reconfirm that CHERI will
//! benefit from capability compression". This harness runs the Olden
//! benchmarks under the 256-bit research format and the compressed
//! 128-bit production format (16-byte in-memory capabilities, 16-byte
//! tag granule) and reports how much of the CHERI overhead compression
//! recovers.

use cheri_bench::{overhead_pct, params_for, parse_scale};
use cheri_cc::strategy::{CapPtr, LegacyPtr, PtrStrategy};
use cheri_olden::dsl::{machine_config, run_bench, DslBench};

fn main() {
    let params = params_for(parse_scale());
    println!("== Capability width ablation: 256-bit vs 128-bit CHERI (execution) ==\n");
    println!("{:<11}{:>14}{:>14}{:>14}", "benchmark", "cheri-256", "cheri-128", "recovered");
    for bench in DslBench::ALL {
        let strategies: [&dyn PtrStrategy; 3] = [&LegacyPtr, &CapPtr::c256(), &CapPtr::c128()];
        let mut totals = Vec::new();
        let mut sums: Vec<Vec<u64>> = Vec::new();
        for s in strategies {
            let cfg = machine_config(bench, &params, s);
            let run = run_bench(bench, &params, s, cfg)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), s.name()));
            assert!(
                run.outcome.exit_value().is_some(),
                "{} [{}] exited {:?}",
                bench.name(),
                s.name(),
                run.outcome.exit
            );
            totals.push(run.total_cycles());
            sums.push(run.checksums().to_vec());
        }
        assert_eq!(sums[1], sums[2], "{}: formats disagree", bench.name());
        let c256 = overhead_pct(totals[1], totals[0]);
        let c128 = overhead_pct(totals[2], totals[0]);
        println!("{:<11}{:>13.1}%{:>13.1}%{:>13.1}pp", bench.name(), c256, c128, c256 - c128);
    }
    println!("\n(overhead vs unsafe MIPS; 'recovered' is what compression buys —");
    println!(" the paper's 'CHERI will benefit from capability compression')");
}
