//! Capability-width ablation, in execution (not just the Figure 3 trace
//! models): Section 8 concludes "these results reconfirm that CHERI will
//! benefit from capability compression". This harness runs the Olden
//! benchmarks under the 256-bit research format and the compressed
//! 128-bit production format (16-byte in-memory capabilities, 16-byte
//! tag granule) and reports how much of the CHERI overhead compression
//! recovers.
//!
//! The strategy triple is the canonical [`CAPWIDTH_STRATEGIES`] from
//! `cheri-sweep`, executed on the parallel sweep engine (`--jobs N`).

use cheri_bench::{overhead_pct, params_for, parse_jobs, parse_scale};
use cheri_sweep::{run_specs, JobSpec, CAPWIDTH_STRATEGIES};
use cheri_work::Workload;

fn main() {
    let params = params_for(parse_scale());
    let specs: Vec<JobSpec> = Workload::ALL
        .into_iter()
        .flat_map(|bench| {
            CAPWIDTH_STRATEGIES.into_iter().map(move |s| JobSpec::new(bench, s, params))
        })
        .collect();
    let results = run_specs(&specs, parse_jobs());

    println!("== Capability width ablation: 256-bit vs 128-bit CHERI (execution) ==\n");
    println!("{:<11}{:>14}{:>14}{:>14}", "benchmark", "cheri-256", "cheri-128", "recovered");
    for (bench, group) in Workload::ALL.iter().zip(results.chunks(CAPWIDTH_STRATEGIES.len())) {
        for r in group {
            assert!(
                r.run.outcome.exit_value().is_some(),
                "{} [{}] exited {:?}",
                bench.name(),
                r.spec.strategy.name(),
                r.run.outcome.exit
            );
        }
        let totals: Vec<u64> = group.iter().map(|r| r.run.total_cycles()).collect();
        assert_eq!(
            group[1].run.checksums(),
            group[2].run.checksums(),
            "{}: formats disagree",
            bench.name()
        );
        let c256 = overhead_pct(totals[1], totals[0]);
        let c128 = overhead_pct(totals[2], totals[0]);
        println!("{:<11}{:>13.1}%{:>13.1}%{:>13.1}pp", bench.name(), c256, c128, c256 - c128);
    }
    println!("\n(overhead vs unsafe MIPS; 'recovered' is what compression buys —");
    println!(" the paper's 'CHERI will benefit from capability compression')");
}
