//! Check-elision ablation (Section 8): "CCured is effective in eliding
//! inner-loop bounds checks ... Similar elision could also be applied to
//! CHERI to selectively utilize capabilities." This harness compares the
//! checked and eliding software-fat-pointer binaries on all four
//! benchmarks.
//!
//! The strategy triple is the canonical [`ELISION_STRATEGIES`] from
//! `cheri-sweep`, executed on the parallel sweep engine (`--jobs N`).

use cheri_bench::{overhead_pct, params_for, parse_jobs, parse_scale};
use cheri_sweep::{run_specs, JobSpec, ELISION_STRATEGIES};
use cheri_work::Workload;

fn main() {
    let params = params_for(parse_scale());
    let specs: Vec<JobSpec> = Workload::ALL
        .into_iter()
        .flat_map(|bench| {
            ELISION_STRATEGIES.into_iter().map(move |s| JobSpec::new(bench, s, params))
        })
        .collect();
    let results = run_specs(&specs, parse_jobs());

    println!("== Software bounds-check elision ablation ==\n");
    println!("{:<11}{:>14}{:>14}{:>14}", "benchmark", "checked", "eliding", "saved");
    for (bench, group) in Workload::ALL.iter().zip(results.chunks(ELISION_STRATEGIES.len())) {
        let totals: Vec<u64> = group.iter().map(|r| r.run.total_cycles()).collect();
        assert_eq!(
            group[1].run.checksums(),
            group[2].run.checksums(),
            "{}: elision changed the result",
            bench.name()
        );
        let checked = overhead_pct(totals[1], totals[0]);
        let eliding = overhead_pct(totals[2], totals[0]);
        println!(
            "{:<11}{:>13.1}%{:>13.1}%{:>13.1}pp",
            bench.name(),
            checked,
            eliding,
            checked - eliding
        );
    }
    println!("\n(overhead vs the unsafe MIPS binary; 'saved' is the elision win)");
}
