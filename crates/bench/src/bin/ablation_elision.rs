//! Check-elision ablation (Section 8): "CCured is effective in eliding
//! inner-loop bounds checks ... Similar elision could also be applied to
//! CHERI to selectively utilize capabilities." This harness compares the
//! checked and eliding software-fat-pointer binaries on all four
//! benchmarks.

use beri_sim::MachineConfig;
use cheri_bench::{overhead_pct, params_for, parse_scale};
use cheri_cc::strategy::{LegacyPtr, PtrStrategy, SoftFatPtr};
use cheri_olden::dsl::{run_bench, DslBench};

fn main() {
    let params = params_for(parse_scale());
    println!("== Software bounds-check elision ablation ==\n");
    println!("{:<11}{:>14}{:>14}{:>14}", "benchmark", "checked", "eliding", "saved");
    for bench in DslBench::ALL {
        let strategies: [&dyn PtrStrategy; 3] =
            [&LegacyPtr, &SoftFatPtr::checked(), &SoftFatPtr::eliding()];
        let mut totals = Vec::new();
        let mut sums: Vec<Vec<u64>> = Vec::new();
        for s in strategies {
            let cfg = MachineConfig {
                mem_bytes: bench.mem_needed(&params, s),
                ..MachineConfig::default()
            };
            let run = run_bench(bench, &params, s, cfg)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), s.name()));
            totals.push(run.total_cycles());
            sums.push(run.checksums().to_vec());
        }
        assert_eq!(sums[1], sums[2], "{}: elision changed the result", bench.name());
        let checked = overhead_pct(totals[1], totals[0]);
        let eliding = overhead_pct(totals[2], totals[0]);
        println!(
            "{:<11}{:>13.1}%{:>13.1}%{:>13.1}pp",
            bench.name(),
            checked,
            eliding,
            checked - eliding
        );
    }
    println!("\n(overhead vs the unsafe MIPS binary; 'saved' is the elision win)");
}
