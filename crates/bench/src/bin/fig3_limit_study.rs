//! Figure 3 reproduction: the trace-driven limit study.
//!
//! Records pointer-event traces of the native workloads — the seven
//! Olden kernels plus the `cheri-work` runtime-system pair (`vmloop`,
//! `allocstress`) — evaluates all eight protection models over each,
//! and prints the five overhead panels (pages, bytes, references,
//! optimistic and pessimistic instructions) normalised to the
//! unprotected baseline.

use cheri_bench::{params_for, parse_jobs, parse_scale};
use cheri_limit::run_study;
use cheri_sweep::run_indexed;
use cheri_work::native::WORKLOADS;

fn main() {
    let scale = parse_scale();
    let params = params_for(scale);
    eprintln!("recording traces ({scale:?} parameters)...");
    // Record the native workload traces in parallel on the sweep
    // engine; `run_indexed` returns them in workload order, so the
    // study's inputs are identical at any `--jobs` count.
    let traces = run_indexed(WORKLOADS.len(), parse_jobs(), |i| WORKLOADS[i].1(&params).trace);
    for t in &traces {
        eprintln!("  {:<10} {:>9} events, {:>7} objects", t.name, t.events.len(), t.objects.len());
    }
    let result = run_study(&traces);
    print!("{}", result.render());

    println!("\n== Figure 3 headline comparisons (paper prose vs measured) ==");
    let get = |m: &str| result.mean_for(m).expect("model present");
    let checks: [(&str, bool); 6] = [
        (
            "iMPX table walk needs the most memory traffic",
            [
                "Mondrian",
                "MPX (FP)",
                "Software FP",
                "Hardbound",
                "M-Machine",
                "CHERI",
                "128b CHERI",
            ]
            .iter()
            .all(|m| get("MPX").bytes >= get(m).bytes),
        ),
        ("Mondrian uses the least memory traffic", {
            ["MPX", "MPX (FP)", "Software FP", "CHERI", "128b CHERI"]
                .iter()
                .all(|m| get("Mondrian").bytes <= get(m).bytes)
        }),
        (
            "CHERI/Hardbound/M-Machine do well on references",
            ["CHERI", "Hardbound", "M-Machine"]
                .iter()
                .all(|g| get(g).refs < get("MPX").refs && get(g).refs < get("Software FP").refs),
        ),
        (
            "M-Machine pays in pages (pow2 padding) despite zero traffic",
            get("M-Machine").pages > 3.0 && get("M-Machine").bytes.abs() < 1.0,
        ),
        (
            "128b CHERI is competitive on memory I/O",
            get("128b CHERI").bytes < get("MPX (FP)").bytes
                && get("128b CHERI").bytes < get("Software FP").bytes,
        ),
        (
            "explicit checks (iMPX/soft FP) cost the most instructions",
            get("Software FP").instrs_pess > get("CHERI").instrs_pess
                && get("MPX").instrs_pess > get("CHERI").instrs_pess,
        ),
    ];
    let mut all_ok = true;
    for (claim, ok) in checks {
        println!("  [{}] {claim}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    assert!(all_ok, "a Figure 3 qualitative claim did not reproduce");
}
