//! Figure 6 + Section 9 reproduction: the FPGA layout breakdown and the
//! derived area/frequency overheads.

fn main() {
    print!("{}", cheri_area::render());
}
