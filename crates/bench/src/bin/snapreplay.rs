//! `snapreplay` — record-replay divergence triage over cheri-snap
//! snapshots.
//!
//! Restores a machine snapshot (as written by `xsweep` on a divergence,
//! or by any harness via `Machine::snapshot`/`Kernel::snapshot`) and
//! re-executes it at the machine level. Replay has no OS underneath it,
//! so execution stops at the first syscall — which is exactly the
//! regime the block cache and the memory hierarchy run in between
//! kernel entries, where transparency bugs live.
//!
//! ```text
//! snapreplay SNAPSHOT.json
//!            [--steps N]           replay horizon in instructions (default 100000)
//!            [--lockstep]          step block-cache vs reference interpreter one
//!                                  instruction at a time, stop at first divergence
//!            [--bisect]            binary-search the first diverging instruction
//!                                  (re-replaying from the snapshot each probe)
//!            [--poke-u32 PA=WORD]  corrupt the subject's physical memory before
//!                                  replay (seeds an artificial divergence; may be
//!                                  repeated)
//!            [--out DIR]           where divergence state dumps go (default results)
//! ```
//!
//! The *subject* runs with the predecoded block cache on (plus any
//! `--poke-u32` corruptions); the *reference* is the plain interpreter
//! on the pristine snapshot. Since the block cache is architecturally
//! transparent, any divergence is a simulator bug — or the seeded poke.
//! On divergence both machines' full states are dumped as JSON
//! snapshots for offline diffing, and the exit status is 1.

use beri_sim::Machine;
use cheri_bench::cli::{self, Cli};
use cheri_bench::triage::{cpu_fingerprint, dump_machine, load_machine_state, run_free};
use cheri_snap::MachineState;
use std::path::{Path, PathBuf};

const USAGE: &str = "snapreplay SNAPSHOT.json [--steps N] [--lockstep] [--bisect] \
     [--poke-u32 PADDR=WORD] [--out DIR]";

struct Args {
    snapshot: PathBuf,
    steps: u64,
    lockstep: bool,
    bisect: bool,
    pokes: Vec<(u64, u32)>,
    out: PathBuf,
}

fn fail(msg: &str) -> ! {
    cli::fail("snapreplay", msg)
}

/// Parses a decimal or `0x`-prefixed integer.
fn parse_int(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Args {
    let mut cli = Cli::new("snapreplay", USAGE);
    let mut args = Args {
        snapshot: PathBuf::new(),
        steps: 100_000,
        lockstep: false,
        bisect: false,
        pokes: Vec::new(),
        out: PathBuf::from("results"),
    };
    let mut snapshot = None;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--steps" => {
                args.steps = match parse_int(&cli.value("--steps")) {
                    Some(n) if n > 0 => n,
                    _ => cli.usage_exit("--steps requires a positive integer"),
                };
            }
            "--lockstep" => args.lockstep = true,
            "--bisect" => args.bisect = true,
            "--poke-u32" => {
                let spec = cli.value("--poke-u32");
                let (pa, word) = spec
                    .split_once('=')
                    .and_then(|(a, w)| Some((parse_int(a)?, u32::try_from(parse_int(w)?).ok()?)))
                    .unwrap_or_else(|| {
                        cli.usage_exit("--poke-u32 requires PADDR=WORD (e.g. 0x8000=0xdead)")
                    });
                args.pokes.push((pa, word));
            }
            "--out" => args.out = PathBuf::from(cli.value("--out")),
            flag if flag.starts_with("--") => cli.unknown(flag),
            path => {
                if snapshot.replace(PathBuf::from(path)).is_some() {
                    cli.usage_exit("exactly one snapshot path expected");
                }
            }
        }
    }
    args.snapshot = snapshot.unwrap_or_else(|| cli.usage_exit("a snapshot path is required"));
    if args.lockstep && args.bisect {
        cli.usage_exit("--lockstep and --bisect are alternative strategies; pass one");
    }
    args
}

/// Rebuilds a machine from the snapshot, optionally corrupting physical
/// memory (the seeded-divergence hook; pokes bypass the architectural
/// write path, exactly like a bit flip under the simulator's feet).
fn build(base: &MachineState, block_cache: bool, pokes: &[(u64, u32)]) -> Machine {
    let mut m = Machine::from_state(base, block_cache)
        .unwrap_or_else(|e| fail(&format!("cannot restore snapshot: {e}")));
    for &(pa, word) in pokes {
        m.mem
            .write_u32(pa, word)
            .unwrap_or_else(|e| fail(&format!("poke at {pa:#x} failed: {e:?}")));
    }
    if !pokes.is_empty() {
        m.invalidate_block_cache();
    }
    m
}

/// Writes a machine's full state under `out` and returns the path.
fn dump(out: &Path, name: &str, m: &Machine) -> PathBuf {
    dump_machine(out, name, m).unwrap_or_else(|e| fail(&e))
}

/// Reports a divergence at instruction `k` (counted from the snapshot)
/// and dumps both states. Exits 1: a divergence was found.
fn report_divergence(
    out: &Path,
    k: u64,
    base: &MachineState,
    subject: &Machine,
    reference: &Machine,
) -> ! {
    println!(
        "first diverging instruction: {k} after the snapshot ({} absolute)",
        base.stats[0] + k
    );
    println!(
        "  subject:   pc={:#x} next_pc={:#x} retired={}",
        subject.cpu.pc, subject.cpu.next_pc, subject.stats.instructions
    );
    println!(
        "  reference: pc={:#x} next_pc={:#x} retired={}",
        reference.cpu.pc, reference.cpu.next_pc, reference.stats.instructions
    );
    let a = dump(out, "diverge-subject.json", subject);
    let b = dump(out, "diverge-reference.json", reference);
    println!("state dumps: {} / {}", a.display(), b.display());
    std::process::exit(1);
}

/// `--bisect`: binary-search for the smallest replay length at which
/// the two machines' CPU fingerprints differ, re-replaying from the
/// snapshot for each probe. O(log N) probes of at most N instructions.
fn bisect(args: &Args, base: &MachineState) -> ! {
    let replay = |bc: bool, pokes: &[(u64, u32)], k: u64| -> Machine {
        let mut m = build(base, bc, pokes);
        run_free(&mut m, k);
        m
    };
    let diverged = |k: u64| -> bool {
        cpu_fingerprint(&replay(true, &args.pokes, k)) != cpu_fingerprint(&replay(false, &[], k))
    };
    if !diverged(args.steps) {
        // CPU state agrees at the horizon; check for memory-only drift.
        let subject = replay(true, &args.pokes, args.steps);
        let reference = replay(false, &[], args.steps);
        if subject.snapshot().state_hash() == reference.snapshot().state_hash() {
            println!("no divergence within {} instructions", args.steps);
            std::process::exit(0);
        }
        println!(
            "CPU state agrees for {} instructions but memory/state hash differs \
             (latent divergence; raise --steps to see it propagate)",
            args.steps
        );
        report_divergence(&args.out, args.steps, base, &subject, &reference);
    }
    // Invariant: fingerprints agree after `lo` instructions, differ
    // after `hi`. A poke touches only memory, so k = 0 always agrees.
    let (mut lo, mut hi) = (0u64, args.steps);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if diverged(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let subject = replay(true, &args.pokes, hi);
    let reference = replay(false, &[], hi);
    report_divergence(&args.out, hi, base, &subject, &reference);
}

/// `--lockstep`: run both machines one instruction at a time, comparing
/// fingerprints after every step. O(N) but exact, and cheap per step
/// (no state serialization until a divergence is found).
fn lockstep(args: &Args, base: &MachineState) -> ! {
    let mut subject = build(base, true, &args.pokes);
    let mut reference = build(base, false, &[]);
    for k in 1..=args.steps {
        let a = run_free(&mut subject, 1);
        let b = run_free(&mut reference, 1);
        if a != b || cpu_fingerprint(&subject) != cpu_fingerprint(&reference) {
            report_divergence(&args.out, k, base, &subject, &reference);
        }
        if a == 0 {
            println!("both sides stopped (syscall or fault) after {} instructions", k - 1);
            break;
        }
    }
    if subject.snapshot().state_hash() != reference.snapshot().state_hash() {
        println!("CPU lockstep clean but memory/state hash differs at the horizon");
        report_divergence(&args.out, args.steps, base, &subject, &reference);
    }
    println!("lockstep: no divergence within {} instructions", args.steps);
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    let base = load_machine_state(&args.snapshot).unwrap_or_else(|e| fail(&e));
    println!(
        "snapshot: {} ({} instructions retired, pc {:#x})",
        args.snapshot.display(),
        base.stats[0],
        base.cpu.pc
    );
    for &(pa, word) in &args.pokes {
        println!("poke: [{pa:#x}] = {word:#010x} (subject only)");
    }
    if args.bisect {
        bisect(&args, &base);
    }
    if args.lockstep {
        lockstep(&args, &base);
    }
    // Plain replay: run the subject and report where it ends up.
    let mut m = build(&base, true, &args.pokes);
    let ran = run_free(&mut m, args.steps);
    println!(
        "replayed {ran} instructions: pc {:#x} → {:#x}, state hash {}",
        base.cpu.pc,
        m.cpu.pc,
        m.snapshot().state_hash()
    );
}
