//! `specfuzz` — lockstep differential fuzzing of the simulator against
//! the executable specification (`cheri-spec`).
//!
//! ```text
//! specfuzz [--iters N]      random programs to try (default 1000)
//!          [--seed S]       base seed (default 1)
//!          [--steps N]      per-program instruction budget (default 512)
//!          [--format F]     c256 | c128 | both (default both, alternating)
//!          [--corpus DIR]   replay every *.json corpus case in DIR first
//!          [--replay FILE]  replay one corpus case and exit
//!          [--out DIR]      where shrunk divergences go (default results/specfuzz)
//! ```
//!
//! Each program runs under every execution tier (interpreter, block
//! cache, snapshot restore at the midpoint) while the spec predicts
//! every retired value and trap cause. On divergence the program is
//! shrunk to a minimal still-diverging case, dumped as a replayable
//! JSON corpus file under `--out`, and the exit status is 1.

use beri_sim::FaultInjection;
use cheri_bench::cli::{self, Cli};
use cheri_bench::specfuzz::{generate, run_all_tiers, shrink, Divergence, Program, STEP_BUDGET};
use cheri_spec::SpecFormat;
use std::path::{Path, PathBuf};

const USAGE: &str = "specfuzz [--iters N] [--seed S] [--steps N] [--format c256|c128|both] \
     [--corpus DIR] [--replay FILE] [--out DIR] [--fault keep-tag]";

struct Args {
    iters: u64,
    seed: u64,
    steps: u64,
    format: Option<SpecFormat>,
    corpus: Option<PathBuf>,
    replay: Option<PathBuf>,
    out: PathBuf,
    fault: Option<FaultInjection>,
}

fn fail(msg: &str) -> ! {
    cli::fail("specfuzz", msg)
}

fn parse_args() -> Args {
    let mut cli = Cli::new("specfuzz", USAGE);
    let mut args = Args {
        iters: 1000,
        seed: 1,
        steps: STEP_BUDGET,
        format: None,
        corpus: None,
        replay: None,
        out: PathBuf::from("results/specfuzz"),
        fault: None,
    };
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--iters" => {
                args.iters = cli
                    .value("--iters")
                    .parse()
                    .unwrap_or_else(|_| cli.usage_exit("--iters requires an integer"));
            }
            "--seed" => {
                args.seed = cli
                    .value("--seed")
                    .parse()
                    .unwrap_or_else(|_| cli.usage_exit("--seed requires an integer"));
            }
            "--steps" => {
                args.steps = match cli.value("--steps").parse() {
                    Ok(n) if n > 0 => n,
                    _ => cli.usage_exit("--steps requires a positive integer"),
                };
            }
            "--format" => {
                args.format = match cli.value("--format").as_str() {
                    "c256" => Some(SpecFormat::C256),
                    "c128" => Some(SpecFormat::C128),
                    "both" => None,
                    _ => cli.usage_exit("--format must be c256, c128 or both"),
                };
            }
            "--fault" => {
                args.fault = match cli.value("--fault").as_str() {
                    "keep-tag" | "keep-tag-on-byte-store" => {
                        Some(FaultInjection::KeepTagOnByteStore)
                    }
                    _ => cli.usage_exit("--fault must be keep-tag"),
                };
            }
            "--corpus" => args.corpus = Some(PathBuf::from(cli.value("--corpus"))),
            "--replay" => args.replay = Some(PathBuf::from(cli.value("--replay"))),
            "--out" => args.out = PathBuf::from(cli.value("--out")),
            flag => cli.unknown(flag),
        }
    }
    args
}

fn load_program(path: &Path) -> Program {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    Program::from_json(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())))
}

/// Replays one case; returns the divergence if it still reproduces.
fn replay_case(path: &Path, fault: Option<FaultInjection>, steps: u64) -> Option<Divergence> {
    let p = load_program(path);
    match run_all_tiers(&p, fault, steps) {
        Ok(()) => {
            println!("ok: {} ({} words, {:?})", path.display(), p.words.len(), p.format);
            None
        }
        Err(d) => {
            println!("DIVERGENCE: {}: {d}", path.display());
            Some(d)
        }
    }
}

/// Shrinks a diverging program and writes it under `out`.
fn report(
    p: &Program,
    d: &Divergence,
    fault: Option<FaultInjection>,
    steps: u64,
    out: &Path,
) -> PathBuf {
    println!("divergence at seed {}: {d}", p.seed);
    println!("shrinking ({} words)...", p.words.len());
    let diverges = |c: &Program| run_all_tiers(c, fault, steps).is_err();
    let mut shrunk = shrink(p, &diverges);
    let detail =
        run_all_tiers(&shrunk, fault, steps).err().map_or_else(|| d.to_string(), |d| d.to_string());
    shrunk.note = format!("seed {}: {detail}", p.seed);
    println!("shrunk to {} words: {detail}", shrunk.words.len());
    std::fs::create_dir_all(out)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out.display())));
    let path = out.join(format!("diverge-{:016x}.json", p.seed));
    std::fs::write(&path, shrunk.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
    println!("replayable case: {}", path.display());
    path
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.replay {
        let failed = replay_case(path, args.fault, args.steps).is_some();
        std::process::exit(i32::from(failed));
    }

    let mut corpus_failures = 0u32;
    if let Some(dir) = &args.corpus {
        let mut cases: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", dir.display())))
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        cases.sort();
        println!("corpus: {} cases from {}", cases.len(), dir.display());
        for case in &cases {
            if replay_case(case, args.fault, args.steps).is_some() {
                corpus_failures += 1;
            }
        }
    }

    let mut divergences = 0u32;
    for i in 0..args.iters {
        let seed = args.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
        let format =
            args.format.unwrap_or(if i % 2 == 0 { SpecFormat::C256 } else { SpecFormat::C128 });
        let p = generate(seed, format);
        if let Err(d) = run_all_tiers(&p, args.fault, args.steps) {
            report(&p, &d, args.fault, args.steps, &args.out);
            divergences += 1;
        }
        if (i + 1) % 500 == 0 {
            println!("{} / {} programs fuzzed, {divergences} divergences", i + 1, args.iters);
        }
    }
    println!(
        "specfuzz: {} programs, {divergences} divergences, {corpus_failures} corpus failures",
        args.iters
    );
    if divergences > 0 || corpus_failures > 0 {
        std::process::exit(1);
    }
}
