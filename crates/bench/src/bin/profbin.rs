//! `profbin` — guest-side profile of a single workload.
//!
//! Runs one workload × strategy cell of the experiment matrix with the
//! symbolized profiler attached and prints the hottest functions with
//! full miss attribution: retired instructions, L1/L2/tag-cache
//! misses, TLB refills, and capability exceptions, each charged to the
//! guest PC (and thus function) that incurred them.
//!
//! ```text
//! profbin [--workload bisort|mst|treeadd|perimeter]   (default: treeadd)
//!         [--strategy mips|ccured|ccured-elide|cheri|cheri128]
//!                                                     (default: cheri)
//!         [--tag-kb N]           tag-cache capacity in KB (default: 8)
//!         [--top N]              rows in the function table (default: 10)
//!         [--folded PATH]        write flamegraph collapsed stacks
//!         [--prof-timeline PATH] write the Chrome trace-event /
//!                                Perfetto timeline JSON
//!         [--json PATH]          write the full profile report JSON
//! ```
//!
//! The folded output feeds `flamegraph.pl` / speedscope directly; the
//! timeline JSON loads in `ui.perfetto.dev` or `chrome://tracing`.

use cheri_olden::dsl::DslBench;
use cheri_olden::OldenParams;
use cheri_sweep::{run_spec_profiled, JobSpec, StrategyKind, DEFAULT_TAG_CACHE_KB};
use std::path::{Path, PathBuf};

struct Args {
    workload: DslBench,
    strategy: StrategyKind,
    tag_kb: usize,
    top: usize,
    folded: Option<PathBuf>,
    timeline: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("profbin: {msg}");
    eprintln!(
        "usage: profbin [--workload NAME] [--strategy NAME] [--tag-kb N] [--top N] \
         [--folded PATH] [--prof-timeline PATH] [--json PATH]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("profbin: {msg}");
    std::process::exit(1);
}

fn parse_workload(name: &str) -> DslBench {
    DslBench::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| usage(&format!("unknown workload '{name}'")))
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        workload: DslBench::Treeadd,
        strategy: StrategyKind::Cheri256,
        tag_kb: DEFAULT_TAG_CACHE_KB,
        top: 10,
        folded: None,
        timeline: None,
        json: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| usage(&format!("{} requires a value", argv[i])))
        };
        match argv[i].as_str() {
            "--workload" => args.workload = parse_workload(value(i)),
            "--strategy" => {
                args.strategy = StrategyKind::parse(value(i))
                    .unwrap_or_else(|| usage(&format!("unknown strategy '{}'", value(i))));
            }
            "--tag-kb" => {
                args.tag_kb = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("--tag-kb requires a non-negative integer"));
            }
            "--top" => {
                args.top = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => usage("--top requires a positive integer"),
                };
            }
            "--folded" => args.folded = Some(PathBuf::from(value(i))),
            "--prof-timeline" => args.timeline = Some(PathBuf::from(value(i))),
            "--json" => args.json = Some(PathBuf::from(value(i))),
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 2;
    }
    args
}

fn write_out(path: &Path, text: &str, what: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
    }
    std::fs::write(path, text)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
    println!("{what}: {}", path.display());
}

fn main() {
    let args = parse_args();
    let spec = JobSpec {
        tag_cache_kb: args.tag_kb,
        ..JobSpec::new(args.workload, args.strategy, OldenParams::scaled())
    };
    let (result, profile) = run_spec_profiled(&spec, spec.machine_config())
        .unwrap_or_else(|e| fail(&format!("{}: {e}", spec.key())));

    let stats = &result.run.outcome.stats;
    println!("== profbin: {} ==\n", spec.key());
    println!(
        "{} instructions retired in {} cycles; profile attributes {} of them across {} \
         functions\n",
        stats.instructions,
        stats.cycles,
        profile.total.retired,
        profile.functions.len()
    );

    println!(
        "{:<16} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
        "function", "retired", "l1i", "l1d", "l2", "tag", "tlb", "capex"
    );
    for f in profile.functions.iter().take(args.top) {
        println!(
            "{:<16} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
            f.name,
            f.counters.retired,
            f.counters.l1i_misses,
            f.counters.l1d_misses,
            f.counters.l2_misses,
            f.counters.tag_misses,
            f.counters.tlb_refills,
            f.counters.cap_exceptions,
        );
    }
    if profile.functions.len() > args.top {
        println!("... ({} more functions; --top to widen)", profile.functions.len() - args.top);
    }
    println!(
        "\n{} unique stacks, {} timeline events",
        profile.folded.len(),
        profile.timeline.events().len()
    );

    if let Some(path) = &args.folded {
        write_out(path, &profile.folded_output(), "folded stacks");
    }
    if let Some(path) = &args.timeline {
        write_out(path, &profile.timeline_json(), "timeline");
    }
    if let Some(path) = &args.json {
        write_out(path, &profile.to_json(), "profile report");
    }
}
