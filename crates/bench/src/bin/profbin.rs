//! `profbin` — guest-side profile of a single workload.
//!
//! Runs one workload × strategy cell of the experiment matrix with the
//! symbolized profiler attached and prints the hottest functions with
//! full miss attribution: retired instructions, L1/L2/tag-cache
//! misses, TLB refills, and capability exceptions, each charged to the
//! guest PC (and thus function) that incurred them.
//!
//! ```text
//! profbin [--workload bisort|mst|treeadd|perimeter]   (default: treeadd)
//!         [--strategy mips|ccured|ccured-elide|cheri|cheri128]
//!                                                     (default: cheri)
//!         [--tag-kb N]           tag-cache capacity in KB (default: 8)
//!         [--top N]              rows in the function table (default: 10)
//!         [--folded PATH]        write flamegraph collapsed stacks
//!         [--prof-timeline PATH] write the Chrome trace-event /
//!                                Perfetto timeline JSON
//!         [--json PATH]          write the full profile report JSON
//! ```
//!
//! The folded output feeds `flamegraph.pl` / speedscope directly; the
//! timeline JSON loads in `ui.perfetto.dev` or `chrome://tracing`.

use cheri_bench::cli::{self, Cli};
use cheri_olden::OldenParams;
use cheri_sweep::{run_spec_profiled, JobSpec, DEFAULT_TAG_CACHE_KB};
use std::path::{Path, PathBuf};

const USAGE: &str = "profbin [--workload NAME] [--strategy NAME] [--tag-kb N] [--top N] \
     [--folded PATH] [--prof-timeline PATH] [--json PATH]";

struct Args {
    workload: String,
    strategy: String,
    tag_kb: usize,
    top: usize,
    folded: Option<PathBuf>,
    timeline: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn fail(msg: &str) -> ! {
    cli::fail("profbin", msg)
}

fn parse_args() -> (Args, Cli) {
    let mut cli = Cli::new("profbin", USAGE);
    let mut args = Args {
        workload: "treeadd".into(),
        strategy: "cheri".into(),
        tag_kb: DEFAULT_TAG_CACHE_KB,
        top: 10,
        folded: None,
        timeline: None,
        json: None,
    };
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--workload" => args.workload = cli.value("--workload"),
            "--strategy" => args.strategy = cli.value("--strategy"),
            "--tag-kb" => args.tag_kb = cli.parsed("--tag-kb", "a non-negative integer"),
            "--top" => args.top = cli.positive("--top"),
            "--folded" => args.folded = Some(PathBuf::from(cli.value("--folded"))),
            "--prof-timeline" => args.timeline = Some(PathBuf::from(cli.value("--prof-timeline"))),
            "--json" => args.json = Some(PathBuf::from(cli.value("--json"))),
            other => cli.unknown(other),
        }
    }
    (args, cli)
}

fn write_out(path: &Path, text: &str, what: &str) {
    cli::write_file("profbin", path, text);
    println!("{what}: {}", path.display());
}

fn main() {
    let (args, cli) = parse_args();
    // The same by-name constructor the cheri-serve protocol resolves
    // jobs through, so "profbin --workload X --strategy Y" and a served
    // profile request name exactly the same experiment.
    let spec =
        JobSpec::from_parts(&args.workload, &args.strategy, args.tag_kb, OldenParams::scaled())
            .unwrap_or_else(|| {
                cli.usage_exit(&format!(
                    "unknown workload/strategy '{}/{}'",
                    args.workload, args.strategy
                ))
            });
    let (result, profile) = run_spec_profiled(&spec, spec.machine_config())
        .unwrap_or_else(|e| fail(&format!("{}: {e}", spec.key())));

    let stats = &result.run.outcome.stats;
    println!("== profbin: {} ==\n", spec.key());
    println!(
        "{} instructions retired in {} cycles; profile attributes {} of them across {} \
         functions\n",
        stats.instructions,
        stats.cycles,
        profile.total.retired,
        profile.functions.len()
    );

    println!(
        "{:<16} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
        "function", "retired", "l1i", "l1d", "l2", "tag", "tlb", "capex"
    );
    for f in profile.functions.iter().take(args.top) {
        println!(
            "{:<16} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
            f.name,
            f.counters.retired,
            f.counters.l1i_misses,
            f.counters.l1d_misses,
            f.counters.l2_misses,
            f.counters.tag_misses,
            f.counters.tlb_refills,
            f.counters.cap_exceptions,
        );
    }
    if profile.functions.len() > args.top {
        println!("... ({} more functions; --top to widen)", profile.functions.len() - args.top);
    }
    println!(
        "\n{} unique stacks, {} timeline events",
        profile.folded.len(),
        profile.timeline.events().len()
    );

    if let Some(path) = &args.folded {
        write_out(path, &profile.folded_output(), "folded stacks");
    }
    if let Some(path) = &args.timeline {
        write_out(path, &profile.timeline_json(), "timeline");
    }
    if let Some(path) = &args.json {
        write_out(path, &profile.to_json(), "profile report");
    }
}
