//! Table 2 reproduction: the functional comparison of protection models
//! against the Section 2 criteria, generated from the models' own
//! `criteria()` implementations.

fn main() {
    print!("{}", cheri_limit::study::render_table2());
}
