//! Latency percentile helpers shared by the load generator and the
//! dashboard.
//!
//! One definition, stated explicitly: the **nearest-rank** percentile.
//! For a sorted sample of `N` values, the p-th percentile is the value
//! at 1-based rank `ceil(p · N / 100)` (clamped to `[1, N]`). This is
//! the textbook definition — no interpolation, always an observed
//! value, p100 = max — and it replaces an earlier rounded-interpolation
//! formula whose p50 of a 2-sample `[10, 20]` was 20, not 10. The unit
//! tests pin the small-N cases exactly so the definition cannot drift
//! silently again.

/// Nearest-rank percentile of an ascending-sorted slice: the value at
/// 1-based rank `ceil(pct · N / 100)`, clamped to the sample. Returns 0
/// for an empty slice; `pct` is clamped to 100.
#[must_use]
pub fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct.min(100) * n).div_ceil(100).clamp(1, n);
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sample_is_every_percentile() {
        let s = [42];
        for pct in [0, 1, 50, 95, 99, 100] {
            assert_eq!(nearest_rank(&s, pct), 42, "p{pct}");
        }
    }

    #[test]
    fn two_samples_split_at_p50() {
        // ceil(50·2/100) = 1 → the *lower* value; anything past 50%
        // needs rank 2. The old interpolating formula got this wrong.
        let s = [10, 20];
        assert_eq!(nearest_rank(&s, 50), 10);
        assert_eq!(nearest_rank(&s, 51), 20);
        assert_eq!(nearest_rank(&s, 95), 20);
        assert_eq!(nearest_rank(&s, 99), 20);
        assert_eq!(nearest_rank(&s, 100), 20);
    }

    #[test]
    fn four_samples_pin_every_quartile() {
        let s = [1, 2, 3, 4];
        assert_eq!(nearest_rank(&s, 25), 1); // ceil(25·4/100) = 1
        assert_eq!(nearest_rank(&s, 50), 2); // ceil(50·4/100) = 2
        assert_eq!(nearest_rank(&s, 75), 3);
        assert_eq!(nearest_rank(&s, 95), 4); // ceil(95·4/100) = 4
        assert_eq!(nearest_rank(&s, 99), 4);
    }

    #[test]
    fn hundred_samples_map_pct_to_rank_directly() {
        // With N = 100, rank = pct exactly: p50 is the 50th value.
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 50), 50);
        assert_eq!(nearest_rank(&s, 95), 95);
        assert_eq!(nearest_rank(&s, 99), 99);
        assert_eq!(nearest_rank(&s, 100), 100);
        assert_eq!(nearest_rank(&s, 1), 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(nearest_rank(&[], 50), 0);
        assert_eq!(nearest_rank(&[7], 0), 7, "p0 clamps to rank 1");
        assert_eq!(nearest_rank(&[1, 2], 200), 2, "pct clamps to 100");
    }
}
