//! Lockstep differential fuzzing of the simulator against the
//! executable specification (`cheri-spec`).
//!
//! A [`Program`] is a seed plus a flat sequence of instruction words,
//! biased toward capability manipulation, trap-heavy paths, and
//! self-modifying code. Each program runs on the real `Machine` under
//! every execution [`Tier`] — plain interpreter, predecoded block
//! cache, and a mid-sequence snapshot/restore — while a [`SpecMachine`]
//! independently predicts every retired register value, every trap
//! cause, every memory byte and every tag bit. Any disagreement is a
//! [`Divergence`]; [`shrink`] reduces it to a minimal replayable case
//! that serializes as a small JSON [`Program`] for the regression
//! corpus under `tests/corpus/`.
//!
//! Both machines are set up identically from the program's seed: code
//! at [`CODE_BASE`], a data window at [`DATA_BASE`] pre-seeded with
//! tagged capabilities, a mix of small/aligned and wild register
//! values, and a capability file holding data, narrowed, untagged,
//! executable and load-only capabilities.

use beri_sim::{cap_from_state, CapFormat, FaultInjection, Machine, MachineConfig, StepResult};
use cheri_snap::CapState;
use cheri_spec::cap::perms;
use cheri_spec::{pack128, SpecCap, SpecEvent, SpecFormat, SpecMachine};

/// Where the instruction words are placed.
pub const CODE_BASE: u64 = 0x1000;
/// Base of the pre-seeded data window.
pub const DATA_BASE: u64 = 0x8000;
/// Physical memory size of both machines.
pub const MEM_BYTES: u64 = 1 << 20;
/// Default per-program instruction budget.
pub const STEP_BUDGET: u64 = 512;

/// One fuzz case: the generator seed it came from (kept for
/// provenance), the capability format to run under, and the raw
/// big-endian instruction words placed at [`CODE_BASE`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Generator seed (provenance only; the words are authoritative).
    pub seed: u64,
    /// Capability format for this run.
    pub format: SpecFormat,
    /// Instruction words, in order.
    pub words: Vec<u32>,
    /// Free-text provenance (what divergence this case reproduces).
    pub note: String,
}

/// The execution tiers a program is verified under. All three must
/// agree with the specification — the tiers differ only in
/// simulator-internal machinery, which is exactly what the fuzzer is
/// checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The plain interpreter, compared after every instruction.
    Interp,
    /// The predecoded block-cache fast path, compared at every
    /// execution event and at the horizon.
    BlockCache,
    /// Block cache plus a full snapshot/restore at the midpoint of the
    /// budget — the warm-start path the sweep services rely on.
    SnapshotRestore,
}

impl Tier {
    /// All tiers, in the order they are run.
    pub const ALL: [Tier; 3] = [Tier::Interp, Tier::BlockCache, Tier::SnapshotRestore];

    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::BlockCache => "block-cache",
            Tier::SnapshotRestore => "snapshot-restore",
        }
    }
}

/// A disagreement between the simulator and the specification.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which tier disagreed.
    pub tier: Tier,
    /// Instruction index (retired count at the point of divergence).
    pub step: u64,
    /// What differed, as a human-readable path.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] step {}: {}", self.tier.name(), self.step, self.detail)
    }
}

fn sim_format(f: SpecFormat) -> CapFormat {
    match f {
        SpecFormat::C256 => CapFormat::C256,
        SpecFormat::C128 => CapFormat::C128,
    }
}

/// The four 256-bit image words of a spec capability, in the
/// [`CapState`] order (perms / reserved / base / length).
fn spec_cap_words(c: &SpecCap) -> [u64; 4] {
    [
        (u64::from(c.perms & perms::ALL) << 33) | (c.reserved >> 32),
        c.reserved & 0xffff_ffff,
        c.base,
        c.length,
    ]
}

fn to_sim_cap(c: &SpecCap) -> cheri_core::Capability {
    cap_from_state(&CapState { tag: c.tag, words: spec_cap_words(c) })
}

// --- deterministic seeding -------------------------------------------

/// xorshift64* — the only randomness source, so a seed fully determines
/// a program and its machine setup.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Injective and never zero (xorshift's fixed point).
        Rng(seed.wrapping_mul(2).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The register/capability/memory environment derived from a seed,
/// identical on both machines.
struct Environment {
    gprs: Vec<(u8, u64)>,
    caps: Vec<(u8, SpecCap)>,
    mem_caps: Vec<(u64, SpecCap)>,
}

fn environment(p: &Program) -> Environment {
    let mut rng = Rng::new(p.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut gprs = vec![(6u8, CODE_BASE), (7, DATA_BASE), (24, 1)];
    for r in 8..=15u8 {
        // Small, data-window-sized offsets (deliberately not aligned).
        gprs.push((r, rng.below(0x4000)));
    }
    for r in 16..=23u8 {
        // Wild full-width values: out-of-bounds and misaligned paths.
        gprs.push((r, rng.next()));
    }
    let data =
        SpecCap { tag: true, perms: perms::ALL, reserved: 0, base: DATA_BASE, length: 0x4000 };
    let caps = vec![
        (1u8, data),
        // Narrowed permissions, narrowed bounds.
        (
            2,
            SpecCap {
                perms: perms::LOAD | perms::STORE | perms::LOAD_CAP | perms::STORE_CAP,
                base: DATA_BASE + 0x800,
                length: 0x1000,
                ..data
            },
        ),
        // Untagged junk: copyable, never dereferenceable.
        (
            3,
            SpecCap {
                tag: false,
                perms: (rng.next() as u32) & perms::ALL,
                reserved: rng.next(),
                base: rng.next(),
                length: rng.next(),
            },
        ),
        // Executable window over the code.
        (
            4,
            SpecCap {
                perms: perms::EXECUTE | perms::LOAD,
                base: CODE_BASE,
                length: 0x1000,
                ..data
            },
        ),
        // Load-only, tightly bounded.
        (5, SpecCap { perms: perms::LOAD, base: DATA_BASE, length: 0x100, ..data }),
    ];
    let granule = p.format.size();
    let mem_caps = (0..4u64)
        .map(|k| {
            let region =
                SpecCap { base: DATA_BASE + 0x200 * k, length: 0x100 + 8 * rng.below(16), ..data };
            (DATA_BASE + 0x1000 + k * granule, region)
        })
        .collect();
    Environment { gprs, caps, mem_caps }
}

/// Builds the simulator half of the pair.
#[must_use]
pub fn build_sim(p: &Program, block_cache: bool, fault: Option<FaultInjection>) -> Machine {
    let mut m = Machine::new(MachineConfig {
        mem_bytes: MEM_BYTES as usize,
        cap_format: sim_format(p.format),
        block_cache,
        fault,
        ..MachineConfig::default()
    });
    for (i, w) in p.words.iter().enumerate() {
        m.mem.write_u32(CODE_BASE + 4 * i as u64, *w).expect("code fits in memory");
    }
    let env = environment(p);
    for &(r, v) in &env.gprs {
        m.cpu.set_gpr(r, v);
    }
    for &(r, c) in &env.caps {
        m.cpu.caps.set(r, to_sim_cap(&c));
    }
    for &(addr, c) in &env.mem_caps {
        let tag = c.tag;
        match p.format {
            SpecFormat::C256 => m.mem.write_tagged(addr, &c.image256(), tag),
            SpecFormat::C128 => m.mem.write_tagged(addr, &pack128(&c), tag),
        }
        .expect("seed capability fits in memory");
    }
    m.cpu.jump_to(CODE_BASE);
    m
}

/// Builds the specification half of the pair.
#[must_use]
pub fn build_spec(p: &Program) -> SpecMachine {
    let mut m = SpecMachine::new(p.format, MEM_BYTES);
    for (i, w) in p.words.iter().enumerate() {
        m.poke_u32(CODE_BASE + 4 * i as u64, *w);
    }
    let env = environment(p);
    for &(r, v) in &env.gprs {
        m.set_gpr(r, v);
    }
    for &(r, c) in &env.caps {
        m.caps[usize::from(r)] = c;
    }
    for &(addr, c) in &env.mem_caps {
        m.poke_cap(addr, &c);
    }
    m.jump_to(CODE_BASE);
    m
}

// --- comparison ------------------------------------------------------

const CP0_CMP: [(u8, &str); 10] = [
    (0, "index"),
    (2, "entrylo0"),
    (3, "entrylo1"),
    (8, "badvaddr"),
    (9, "count"),
    (10, "entryhi"),
    (12, "status"),
    (13, "cause"),
    (14, "epc"),
    (27, "capcause"),
];

/// Compares every architectural CPU register the spec models. Returns
/// the first difference as a path string.
#[must_use]
pub fn compare_cpu(sim: &Machine, spec: &SpecMachine) -> Option<String> {
    for r in 0..32u8 {
        let (a, b) = (sim.cpu.get_gpr(r), spec.gpr[usize::from(r)]);
        if a != b {
            return Some(format!("gpr[{r}]: sim {a:#x} != spec {b:#x}"));
        }
    }
    for (name, a, b) in [
        ("hi", sim.cpu.hi, spec.hi),
        ("lo", sim.cpu.lo, spec.lo),
        ("pc", sim.cpu.pc, spec.pc),
        ("next_pc", sim.cpu.next_pc, spec.next_pc),
    ] {
        if a != b {
            return Some(format!("{name}: sim {a:#x} != spec {b:#x}"));
        }
    }
    for (rd, name) in CP0_CMP {
        let (a, b) = (sim.cpu.cp0.read(rd), spec.cp0.read(rd));
        if a != b {
            return Some(format!("cp0.{name}: sim {a:#x} != spec {b:#x}"));
        }
    }
    for r in 0..32u8 {
        let sim_cap = beri_sim::cap_to_state(sim.cpu.caps.get(r));
        let spec_cap = &spec.caps[usize::from(r)];
        if sim_cap.tag != spec_cap.tag || sim_cap.words != spec_cap_words(spec_cap) {
            return Some(format!(
                "c{r}: sim tag={} {:x?} != spec tag={} {:x?}",
                sim_cap.tag,
                sim_cap.words,
                spec_cap.tag,
                spec_cap_words(spec_cap)
            ));
        }
    }
    let sim_pcc = beri_sim::cap_to_state(sim.cpu.caps.pcc());
    if sim_pcc.tag != spec.pcc.tag || sim_pcc.words != spec_cap_words(&spec.pcc) {
        return Some("pcc differs".to_string());
    }
    if sim.cpu.ll_reservation != spec.ll_reservation {
        return Some(format!(
            "ll_reservation: sim {:?} != spec {:?}",
            sim.cpu.ll_reservation, spec.ll_reservation
        ));
    }
    None
}

/// Compares every memory byte and every tag bit.
#[must_use]
pub fn compare_mem(sim: &mut Machine, spec: &SpecMachine) -> Option<String> {
    let granule = spec.format.size();
    let mut buf = vec![0u8; granule as usize];
    let spec_mem = spec.mem_bytes();
    let spec_tags = spec.tag_bits();
    for g in 0..(MEM_BYTES / granule) {
        let addr = g * granule;
        let tag = sim.mem.read_tagged(addr, &mut buf).expect("in range");
        if tag != spec_tags[g as usize] {
            return Some(format!("tag[{addr:#x}]: sim {tag} != spec {}", spec_tags[g as usize]));
        }
        let expect = &spec_mem[addr as usize..(addr + granule) as usize];
        if buf != expect {
            let off = buf.iter().zip(expect).position(|(a, b)| a != b).unwrap_or(0);
            return Some(format!(
                "mem[{:#x}]: sim {:#04x} != spec {:#04x}",
                addr + off as u64,
                buf[off],
                expect[off]
            ));
        }
    }
    None
}

// --- lockstep execution ----------------------------------------------

/// How a lockstep run ended.
enum Stop {
    /// The budget ran out with both sides still agreeing.
    Exhausted,
    /// Both sides stopped at the same terminal event (break/memfault).
    Ended,
}

/// Maps one (simulator event, spec event) pair to what the harness
/// should do. `Ok(true)` = keep going, `Ok(false)` = stop cleanly.
fn reconcile(
    sim: &mut Machine,
    spec: &mut SpecMachine,
    sr: &Result<StepResult, cheri_mem::MemError>,
    se: SpecEvent,
) -> Result<bool, String> {
    match (sr, se) {
        (Ok(StepResult::Continue), SpecEvent::Retired) => Ok(true),
        (Ok(StepResult::Trap(_)), SpecEvent::Trap { .. }) => {
            // Trap detail is compared via CP0 (cause/epc/badvaddr/
            // capcause); resume both at the next architectural PC.
            sim.advance_past_trap();
            spec.advance_past_trap();
            Ok(true)
        }
        (Ok(StepResult::Syscall), SpecEvent::Syscall) => {
            sim.advance_past_trap();
            spec.advance_past_trap();
            Ok(true)
        }
        (Ok(StepResult::Break(a)), SpecEvent::Break(b)) => {
            if *a == b {
                Ok(false)
            } else {
                Err(format!("break code: sim {a} != spec {b}"))
            }
        }
        (Err(_), SpecEvent::MemFault) => Ok(false),
        (sim_ev, spec_ev) => Err(format!("event: sim {sim_ev:?} != spec {spec_ev:?}")),
    }
}

/// Tier A: instruction-at-a-time lockstep with a full CPU comparison
/// after every step.
fn run_interp(
    sim: &mut Machine,
    spec: &mut SpecMachine,
    budget: u64,
    tier: Tier,
) -> Result<Stop, Divergence> {
    for k in 0..budget {
        let sr = sim.step();
        let se = spec.step();
        let keep_going =
            reconcile(sim, spec, &sr, se).map_err(|detail| Divergence { tier, step: k, detail })?;
        if let Some(detail) = compare_cpu(sim, spec) {
            return Err(Divergence { tier, step: k, detail });
        }
        if !keep_going {
            return Ok(Stop::Ended);
        }
    }
    Ok(Stop::Exhausted)
}

/// Tier B/C inner loop: run the simulator in chunks (letting the block
/// cache do its thing), advance the spec by the retired-instruction
/// delta, and compare at every execution event.
fn run_chunked(
    sim: &mut Machine,
    spec: &mut SpecMachine,
    budget: u64,
    tier: Tier,
) -> Result<Stop, Divergence> {
    let mut done = 0u64;
    while done < budget {
        let before = sim.stats.instructions;
        let sr = sim.run(budget - done);
        let retired = sim.stats.instructions - before;
        for i in 0..retired {
            let se = spec.step();
            if se != SpecEvent::Retired {
                return Err(Divergence {
                    tier,
                    step: done + i,
                    detail: format!("sim retired but spec reported {se:?}"),
                });
            }
        }
        done += retired;
        if matches!(sr, Ok(StepResult::Continue)) {
            // Budget chunk exhausted with no event.
            if let Some(detail) = compare_cpu(sim, spec) {
                return Err(Divergence { tier, step: done, detail });
            }
            continue;
        }
        // The simulator stopped at an event *before* retiring the
        // instruction; one more spec step must produce the same event.
        let se = spec.step();
        let keep_going = reconcile(sim, spec, &sr, se).map_err(|detail| Divergence {
            tier,
            step: done,
            detail,
        })?;
        if let Some(detail) = compare_cpu(sim, spec) {
            return Err(Divergence { tier, step: done, detail });
        }
        if !keep_going {
            return Ok(Stop::Ended);
        }
        // The event consumed a step even though nothing retired;
        // without this a loop around a trapping instruction (which
        // retires nothing, forever) would never exhaust the budget.
        done += 1;
    }
    Ok(Stop::Exhausted)
}

/// Runs one program under one tier, comparing CPU state in lockstep and
/// all of memory (bytes and tags) at the end.
///
/// # Errors
///
/// The first [`Divergence`] found.
pub fn run_tier(
    p: &Program,
    tier: Tier,
    fault: Option<FaultInjection>,
    budget: u64,
) -> Result<(), Divergence> {
    let mut spec = build_spec(p);
    let mut sim = build_sim(p, tier != Tier::Interp, fault);
    let stop = match tier {
        Tier::Interp => run_interp(&mut sim, &mut spec, budget, tier),
        Tier::BlockCache => run_chunked(&mut sim, &mut spec, budget, tier),
        Tier::SnapshotRestore => {
            let half = budget / 2;
            match run_chunked(&mut sim, &mut spec, half, tier)? {
                Stop::Ended => Ok(Stop::Ended),
                Stop::Exhausted => {
                    // Round-trip the simulator through a snapshot at the
                    // midpoint; the spec does not notice.
                    let state = sim.snapshot();
                    let mut restored =
                        Machine::from_state(&state, true).map_err(|e| Divergence {
                            tier,
                            step: half,
                            detail: format!("snapshot restore failed: {e}"),
                        })?;
                    let r = run_chunked(&mut restored, &mut spec, budget - half, tier);
                    sim = restored;
                    r
                }
            }
        }
    }?;
    let _ = stop;
    if let Some(detail) = compare_mem(&mut sim, &spec) {
        return Err(Divergence { tier, step: budget, detail });
    }
    Ok(())
}

/// Runs one program under every tier.
///
/// # Errors
///
/// The first [`Divergence`] found.
pub fn run_all_tiers(
    p: &Program,
    fault: Option<FaultInjection>,
    budget: u64,
) -> Result<(), Divergence> {
    for tier in Tier::ALL {
        run_tier(p, tier, fault, budget)?;
    }
    Ok(())
}

// --- program generation ----------------------------------------------

/// Generates a fuzz program from a seed: 24–64 instruction words biased
/// toward capability manipulation, capability memory traffic, traps,
/// and the occasional store into the code region (self-modification the
/// block cache must notice).
#[must_use]
pub fn generate(seed: u64, format: SpecFormat) -> Program {
    let mut rng = Rng::new(seed);
    let len = 24 + rng.below(41) as usize;
    let words = (0..len).map(|_| gen_word(&mut rng, len)).collect();
    Program { seed, format, words, note: String::new() }
}

fn cop2(sub: u32, r1: u32, r2: u32, r3: u32, low: u32) -> u32 {
    (0x12 << 26) | (sub << 21) | (r1 << 16) | (r2 << 11) | (r3 << 6) | (low & 0x3f)
}

#[allow(clippy::too_many_lines)]
fn gen_word(rng: &mut Rng, len: usize) -> u32 {
    let gpr = |rng: &mut Rng| 1 + rng.below(23) as u32; // $1..$23
    let small = |rng: &mut Rng| (8 + rng.below(8)) as u32; // $8..$15
    let capr = |rng: &mut Rng| rng.below(8) as u32; // c0..c7
    match rng.below(100) {
        // Capability manipulation: get/derive/narrow/convert.
        0..=29 => {
            let sub = [0, 1, 2, 3, 4, 5, 5, 6, 6, 7, 8, 8, 9, 10][rng.below(14) as usize];
            cop2(sub, capr(rng), capr(rng), gpr(rng), 0)
        }
        // Capability memory traffic: CLC/CSC near the seeded window,
        // CL*/CS* scalar accesses through data capabilities.
        30..=41 => {
            let cb = 1 + rng.below(2) as u32; // c1 or c2
            match rng.below(4) {
                0 => cop2(13, capr(rng), cb, small(rng), rng.below(4) as u32),
                1 => cop2(14, capr(rng), cb, small(rng), rng.below(4) as u32),
                2 => {
                    let sub = 15 + rng.below(7) as u32; // CLB..CLD
                    cop2(sub, gpr(rng), cb, small(rng), rng.below(8) as u32)
                }
                _ => {
                    let sub = 22 + rng.below(4) as u32; // CSB..CSD
                    cop2(sub, gpr(rng), cb, small(rng), rng.below(8) as u32)
                }
            }
        }
        // Tag branches.
        42..=46 => {
            let sub = 11 + rng.below(2) as u32;
            (0x12 << 26) | (sub << 21) | (capr(rng) << 16) | (1 + rng.below(5) as u32)
        }
        // Capability jumps through the executable window.
        47..=49 => {
            if rng.below(2) == 0 {
                cop2(28, 4, 0, 0, 0)
            } else {
                cop2(29, 4, 6 + rng.below(2) as u32, 0, 0)
            }
        }
        // ALU: three-register (including trapping add/sub on wild
        // registers), immediates, shifts, multiply/divide, HI/LO.
        50..=69 => match rng.below(5) {
            0 => {
                let funct =
                    [0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x2a, 0x2b, 0x2c, 0x2d]
                        [rng.below(12) as usize];
                (gpr(rng) << 21) | (gpr(rng) << 16) | (gpr(rng) << 11) | funct
            }
            1 => {
                let op =
                    [0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x18, 0x19][rng.below(9) as usize];
                (op << 26) | (gpr(rng) << 21) | (gpr(rng) << 16) | (rng.next() as u32 & 0xffff)
            }
            2 => {
                let funct = [0x00, 0x02, 0x03, 0x38, 0x3a, 0x3b][rng.below(6) as usize];
                (gpr(rng) << 16) | (gpr(rng) << 11) | ((rng.below(32) as u32) << 6) | funct
            }
            3 => {
                let funct = [0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f][rng.below(8) as usize];
                (gpr(rng) << 21) | (gpr(rng) << 16) | funct
            }
            _ => {
                let funct = [0x10, 0x12][rng.below(2) as usize]; // mfhi/mflo
                (gpr(rng) << 11) | funct
            }
        },
        // Legacy loads/stores via $7 (data) — offsets deliberately
        // unaligned sometimes, exercising address-error traps.
        70..=79 => {
            let op = [0x20, 0x21, 0x23, 0x24, 0x25, 0x27, 0x37, 0x28, 0x29, 0x2b, 0x3f]
                [rng.below(11) as usize];
            (op << 26) | (7 << 21) | (gpr(rng) << 16) | (rng.below(0x1000) as u32)
        }
        // LL/SC.
        80..=84 => {
            let op = [0x30, 0x34, 0x38, 0x3c][rng.below(4) as usize];
            (op << 26) | (7 << 21) | (gpr(rng) << 16) | ((rng.below(0x200) as u32) & !7)
        }
        // Branches, short forward.
        85..=89 => {
            let off = 1 + rng.below(5) as u32;
            match rng.below(4) {
                0 => (0x04 << 26) | (gpr(rng) << 21) | (gpr(rng) << 16) | off,
                1 => (0x05 << 26) | (gpr(rng) << 21) | (gpr(rng) << 16) | off,
                2 => (0x06 << 26) | (gpr(rng) << 21) | off,
                _ => (0x01 << 26) | (gpr(rng) << 21) | (0x01 << 16) | off, // bgez
            }
        }
        // Jumps back into the code region.
        90..=91 => {
            let target = (CODE_BASE >> 2) as u32 + rng.below(len as u64) as u32;
            let op = if rng.below(2) == 0 { 0x02 } else { 0x03 };
            (op << 26) | target
        }
        // CP0 and the TLB instructions.
        92..=95 => match rng.below(4) {
            0 => {
                let rd = [0u32, 2, 3, 9, 10, 12, 14][rng.below(7) as usize];
                (0x10 << 26) | (gpr(rng) << 16) | (rd << 11)
            }
            1 => {
                let rd = [0u32, 2, 3, 8, 9, 10, 12, 13, 14, 27][rng.below(10) as usize];
                (0x10 << 26) | (0x04 << 21) | (gpr(rng) << 16) | (rd << 11)
            }
            _ => {
                let funct = [0x01u32, 0x02, 0x06, 0x08][rng.below(4) as usize];
                (0x10 << 26) | (1 << 25) | funct
            }
        },
        // Traps.
        96..=97 => {
            if rng.below(2) == 0 {
                0x0c // syscall
            } else {
                (rng.below(1024) as u32) << 16 | 0x0d // break
            }
        }
        // Self-modifying code: a store through $6 into the code region.
        _ => {
            let off = (rng.below(len as u64 * 4) as u32) & !3;
            (0x2b << 26) | (6 << 21) | (gpr(rng) << 16) | off
        }
    }
}

// --- shrinking -------------------------------------------------------

/// Shrinks a diverging program: first find (by bisection) the shortest
/// still-diverging prefix, then try to replace each remaining word with
/// a NOP. `diverges` must be deterministic.
#[must_use]
pub fn shrink(p: &Program, diverges: &dyn Fn(&Program) -> bool) -> Program {
    let mut best = p.clone();
    // Shortest diverging prefix, assuming (as a heuristic) prefix
    // divergence is monotonic in length.
    let (mut lo, mut hi) = (0usize, best.words.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let candidate = Program { words: best.words[..mid].to_vec(), ..best.clone() };
        if diverges(&candidate) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if hi < best.words.len() {
        let candidate = Program { words: best.words[..hi].to_vec(), ..best.clone() };
        if diverges(&candidate) {
            best = candidate;
        }
    }
    // NOP-out every word that isn't load-bearing.
    for i in 0..best.words.len() {
        if best.words[i] == 0 {
            continue;
        }
        let mut candidate = best.clone();
        candidate.words[i] = 0;
        if diverges(&candidate) {
            best = candidate;
        }
    }
    best
}

// --- corpus serialization --------------------------------------------

impl Program {
    /// Serializes as the `cheri-specfuzz/v1` JSON corpus format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cap = match self.format {
            SpecFormat::C256 => "c256",
            SpecFormat::C128 => "c128",
        };
        let note: String =
            self.note.chars().filter(|c| *c != '"' && *c != '\\' && *c != '\n').collect();
        let words = self.words.iter().map(|w| format!("{w}")).collect::<Vec<_>>().join(", ");
        format!(
            "{{\n  \"format\": \"cheri-specfuzz/v1\",\n  \"seed\": {},\n  \"cap\": \"{cap}\",\n  \"note\": \"{note}\",\n  \"words\": [{words}]\n}}\n",
            self.seed
        )
    }

    /// Parses the `cheri-specfuzz/v1` corpus format.
    ///
    /// # Errors
    ///
    /// A rendered message for missing/malformed fields.
    pub fn from_json(text: &str) -> Result<Program, String> {
        fn field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
            let tag = format!("\"{key}\"");
            let at = text.find(&tag).ok_or_else(|| format!("missing field {key}"))?;
            let rest = &text[at + tag.len()..];
            let colon = rest.find(':').ok_or_else(|| format!("malformed field {key}"))?;
            Ok(rest[colon + 1..].trim_start())
        }
        fn string_value(raw: &str, key: &str) -> Result<String, String> {
            let raw = raw.strip_prefix('"').ok_or_else(|| format!("{key} is not a string"))?;
            let end = raw.find('"').ok_or_else(|| format!("{key} is unterminated"))?;
            Ok(raw[..end].to_string())
        }
        let version = string_value(field(text, "format")?, "format")?;
        if version != "cheri-specfuzz/v1" {
            return Err(format!("unknown corpus format {version:?}"));
        }
        let seed_raw = field(text, "seed")?;
        let end = seed_raw.find(|c: char| !c.is_ascii_digit()).unwrap_or(seed_raw.len());
        let seed: u64 = seed_raw[..end].parse().map_err(|e| format!("bad seed: {e}"))?;
        let format = match string_value(field(text, "cap")?, "cap")?.as_str() {
            "c256" => SpecFormat::C256,
            "c128" => SpecFormat::C128,
            other => return Err(format!("unknown cap format {other:?}")),
        };
        let note = string_value(field(text, "note").unwrap_or("\"\""), "note").unwrap_or_default();
        let words_raw = field(text, "words")?;
        let words_raw =
            words_raw.strip_prefix('[').ok_or_else(|| "words is not an array".to_string())?;
        let end = words_raw.find(']').ok_or_else(|| "words is unterminated".to_string())?;
        let mut words = Vec::new();
        for item in words_raw[..end].split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            words.push(item.parse().map_err(|e| format!("bad word {item:?}: {e}"))?);
        }
        Ok(Program { seed, format, words, note })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_json_round_trips() {
        let p = Program {
            seed: 0xdead_beef,
            format: SpecFormat::C128,
            words: vec![0x1234_5678, 0, 0xffff_ffff],
            note: "a \"quoted\" note\nwith a newline".to_string(),
        };
        let back = Program::from_json(&p.to_json()).unwrap();
        assert_eq!(back.seed, p.seed);
        assert_eq!(back.format, p.format);
        assert_eq!(back.words, p.words);
        assert_eq!(back.note, "a quoted notewith a newline");
    }

    #[test]
    fn generated_programs_are_deterministic() {
        let a = generate(42, SpecFormat::C256);
        let b = generate(42, SpecFormat::C256);
        assert_eq!(a.words, b.words);
        let c = generate(43, SpecFormat::C256);
        assert_ne!(a.words, c.words);
    }

    #[test]
    fn smoke_fuzz_is_clean() {
        for seed in 0..24u64 {
            let format = if seed % 2 == 0 { SpecFormat::C256 } else { SpecFormat::C128 };
            let p = generate(seed, format);
            if let Err(d) = run_all_tiers(&p, None, 256) {
                panic!("seed {seed} diverged: {d}\n{}", p.to_json());
            }
        }
    }
}
