//! # cheri-bench — experiment harnesses
//!
//! One binary per exhibit of the ISCA 2014 paper:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_isa` | Table 1 — executes every CHERI instruction |
//! | `table2_matrix` | Table 2 — the functional comparison matrix |
//! | `fig1_layout` | Figure 1 — the 256-bit capability layout |
//! | `fig2_pipeline` | Figure 2 — the pipeline/coprocessor structure |
//! | `fig3_limit_study` | Figure 3 — the 8-model limit study |
//! | `fig4_overheads` | Figure 4 — FPGA execution-time overheads |
//! | `fig5_heapsize` | Figure 5 — CHERI slowdown vs heap size |
//! | `fig6_area` | Figure 6 + §9 — area and frequency |
//! | `ablation_tag_cache` | §4.2 tag-cache size ablation |
//! | `ablation_elision` | §8 check-elision ablation |
//!
//! All accept `--scaled` (CI-sized), default to medium sizes, and accept
//! `--paper` for the paper's full parameters (minutes of host time).
//!
//! This library holds the small amount of shared harness plumbing,
//! including the common command-line scanner ([`cli::Cli`]).

pub mod cli;
pub mod latency;
pub mod specfuzz;
pub mod triage;

use cheri_cc::strategy::PtrStrategy;
use cheri_olden::OldenParams;
use cheri_sweep::StrategyKind;
use cheri_trace::{shared, AnySink, JsonlSink, SharedSink};
use cheri_work::Workload;

/// Which problem-size preset a harness should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized (`--scaled`).
    Scaled,
    /// The default: memory-hierarchy-dominated but quick.
    Medium,
    /// The paper's parameters (`--paper`).
    Paper,
}

/// Parses the common `--scaled` / `--paper` flags.
#[must_use]
pub fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--scaled") {
        Scale::Scaled
    } else {
        Scale::Medium
    }
}

/// The parameter preset for a scale.
#[must_use]
pub fn params_for(scale: Scale) -> OldenParams {
    match scale {
        Scale::Scaled => OldenParams::scaled(),
        Scale::Medium => OldenParams::medium(),
        Scale::Paper => OldenParams::paper(),
    }
}

/// The three Figure 4 compilation modes, baseline first (a view over
/// the canonical matrix in [`cheri_sweep`]).
#[must_use]
pub fn figure4_strategies() -> Vec<Box<dyn PtrStrategy>> {
    cheri_sweep::FIGURE4_STRATEGIES.iter().map(|k| k.strategy()).collect()
}

/// Resolves a workload by its canonical name (`bisort`, `mst`,
/// `treeadd`, `perimeter`, `vmloop`, `allocstress`).
#[must_use]
pub fn parse_bench_name(name: &str) -> Option<Workload> {
    Workload::parse(name)
}

/// Parses a `--workloads` CSV operand into workloads: canonical names,
/// comma-separated, order preserved, duplicates collapsed. Unknown
/// names and an empty list are command-line misuse (exit 2 via the
/// scanner).
pub fn parse_workloads_csv(cli: &cli::Cli, csv: &str) -> Vec<Workload> {
    let mut ws: Vec<Workload> = Vec::new();
    for name in csv.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let w = Workload::parse(name).unwrap_or_else(|| {
            cli.usage_exit(&format!(
                "unknown workload '{name}' (known: {})",
                Workload::ALL.map(Workload::name).join(", ")
            ))
        });
        if !ws.contains(&w) {
            ws.push(w);
        }
    }
    if ws.is_empty() {
        cli.usage_exit("--workloads requires a comma-separated list of workload names");
    }
    ws
}

/// Resolves a pointer strategy by name, accepting the common aliases
/// used across the harnesses (`mips`/`legacy`, `ccured`/`soft`,
/// `ccured-elide`/`elide`, `cheri`/`cap`/`c256`, `cheri128`/`c128`).
#[must_use]
pub fn parse_strategy(name: &str) -> Option<Box<dyn PtrStrategy>> {
    StrategyKind::parse(name).map(StrategyKind::strategy)
}

/// Parses the `--jobs N` flag shared by the matrix harnesses; defaults
/// to the host's available parallelism.
///
/// # Panics
///
/// Exits with a message if the argument is missing or not a positive
/// integer.
#[must_use]
pub fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        None => cheri_sweep::default_threads(),
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            }
        },
    }
}

/// Parses the `--trace-out <path>` flag shared by the figure harnesses:
/// when present, returns a JSONL sink streaming to that path which the
/// harness threads through every run (with one marker line per run).
///
/// # Panics
///
/// Exits with a message if the path cannot be created.
#[must_use]
pub fn parse_trace_out() -> Option<SharedSink> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--trace-out")?;
    let path = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("--trace-out requires a path argument");
        std::process::exit(2);
    });
    let jsonl = JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot create trace file {path}: {e}");
        std::process::exit(2);
    });
    Some(shared(AnySink::Jsonl(jsonl)))
}

/// Percentage overhead of `x` over `base`.
#[must_use]
pub fn overhead_pct(x: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (x as f64 - base as f64) / base as f64 * 100.0
    }
}

/// A crude text bar for terminal "figures".
#[must_use]
pub fn bar(pct: f64, scale: f64) -> String {
    let n = (pct / scale).clamp(0.0, 60.0) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_pct_basics() {
        assert_eq!(overhead_pct(150, 100), 50.0);
        assert_eq!(overhead_pct(100, 100), 0.0);
        assert_eq!(overhead_pct(5, 0), 0.0);
    }

    #[test]
    fn figure4_strategy_order() {
        let s = figure4_strategies();
        assert_eq!(s[0].name(), "mips");
        assert_eq!(s[1].name(), "ccured");
        assert_eq!(s[2].name(), "cheri");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(-5.0, 1.0), "");
        assert_eq!(bar(10.0, 1.0).len(), 10);
        assert_eq!(bar(1e9, 1.0).len(), 60);
    }
}
