//! End-to-end tests of the `snapreplay` triage binary: a clean snapshot
//! replays with no divergence, and a seeded corruption (`--poke-u32`)
//! is bisected to the exact first diverging instruction — with
//! `--bisect` and `--lockstep` agreeing on where that is.

use beri_sim::decode::encode;
use beri_sim::inst::{AluImmOp, AluOp, BranchCond, Inst, MulDivOp, Width};
use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_snap::{MachineState, Snapshot};
use std::path::{Path, PathBuf};
use std::process::Command;

const CODE_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x8000;

/// The store/load/multiply loop from the simulator's own round-trip
/// tests: ~128 dynamic instructions ending in a syscall.
fn program() -> Vec<u32> {
    vec![
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 16 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 7, imm: 0 }),
        // loop:
        encode(&Inst::Store { width: Width::Double, rt: 8, base: 9, imm: 0 }),
        encode(&Inst::Load { width: Width::Double, rt: 11, base: 9, imm: 0, unsigned: false }),
        encode(&Inst::Alu { op: AluOp::Daddu, rd: 10, rs: 10, rt: 11 }),
        encode(&Inst::MulDiv { op: MulDivOp::Dmultu, rs: 10, rt: 8 }),
        encode(&Inst::Mflo { rd: 12 }),
        encode(&Inst::AluImm { op: AluImmOp::Daddiu, rt: 9, rs: 9, imm: 8 }),
        encode(&Inst::AluImm { op: AluImmOp::Daddiu, rt: 8, rs: 8, imm: -1i16 as u16 }),
        encode(&Inst::Branch { cond: BranchCond::Ne, rs: 8, rt: 0, offset: -8 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 13, rs: 12, imm: 0 }), // delay slot
        encode(&Inst::Syscall { code: 0 }),
    ]
}

/// Runs the program for 10 instructions and writes the snapshot (in the
/// full `Snapshot` wrapper, machine-only) to `dir`.
fn snapshot_file(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let mut m = Machine::new(MachineConfig {
        mem_bytes: 1 << 20,
        block_cache: true,
        ..MachineConfig::default()
    });
    m.load_code(CODE_BASE, &program()).unwrap();
    m.cpu.set_gpr(7, DATA_BASE);
    m.cpu.jump_to(CODE_BASE);
    assert_eq!(m.run(10).unwrap(), StepResult::Continue);
    let snap = Snapshot { machine: m.snapshot(), kernel: None };
    let path = dir.join("snap.json");
    std::fs::write(&path, snap.to_json()).unwrap();
    path
}

fn run_tool(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_snapreplay")).args(args).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), format!("{stdout}{stderr}"))
}

/// Extracts K from "first diverging instruction: K after the snapshot".
fn diverging_instruction(out: &str) -> u64 {
    out.lines()
        .find_map(|l| l.strip_prefix("first diverging instruction: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|k| k.parse().ok())
        .unwrap_or_else(|| panic!("no divergence report in output:\n{out}"))
}

#[test]
fn clean_snapshot_replays_without_divergence() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("snapreplay-clean");
    let snap = snapshot_file(&dir);
    let snap = snap.to_str().unwrap();

    let (code, out) = run_tool(&[snap, "--steps", "500"]);
    assert_eq!(code, 0, "plain replay failed:\n{out}");
    assert!(out.contains("replayed"), "{out}");

    let out_dir = dir.join("out");
    let (code, out) =
        run_tool(&[snap, "--bisect", "--steps", "500", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(code, 0, "clean bisect should find nothing:\n{out}");
    assert!(out.contains("no divergence within 500 instructions"), "{out}");

    let (code, out) =
        run_tool(&[snap, "--lockstep", "--steps", "500", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(code, 0, "clean lockstep should find nothing:\n{out}");
    assert!(out.contains("no divergence"), "{out}");
}

#[test]
fn seeded_divergence_is_bisected_and_lockstep_agrees() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("snapreplay-seeded");
    let snap = snapshot_file(&dir);
    let snap = snap.to_str().unwrap();

    // Overwrite the loop's MFLO (code word 6) with `ori $12, $0, 7` in
    // the subject: its next execution is the first diverging instruction.
    let poke_addr = CODE_BASE + 6 * 4;
    let poke_word = encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 12, rs: 0, imm: 7 });
    let poke = format!("{poke_addr:#x}={poke_word:#x}");

    let bisect_out = dir.join("bisect");
    let (code, out) = run_tool(&[
        snap,
        "--bisect",
        "--steps",
        "500",
        "--poke-u32",
        &poke,
        "--out",
        bisect_out.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "seeded bisect must report a divergence:\n{out}");
    let k_bisect = diverging_instruction(&out);
    assert!((1..=500).contains(&k_bisect), "implausible divergence point {k_bisect}:\n{out}");

    // Both dumped states must exist, parse, and actually differ.
    let subject = std::fs::read_to_string(bisect_out.join("diverge-subject.json")).unwrap();
    let reference = std::fs::read_to_string(bisect_out.join("diverge-reference.json")).unwrap();
    let subject = MachineState::from_json(&subject).unwrap();
    let reference = MachineState::from_json(&reference).unwrap();
    assert_ne!(subject.state_hash(), reference.state_hash());
    assert_eq!(subject.stats[0], reference.stats[0], "both sides retired the same count");

    // The exact linear search must land on the same instruction.
    let lockstep_out = dir.join("lockstep");
    let (code, out) = run_tool(&[
        snap,
        "--lockstep",
        "--steps",
        "500",
        "--poke-u32",
        &poke,
        "--out",
        lockstep_out.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "seeded lockstep must report a divergence:\n{out}");
    let k_lockstep = diverging_instruction(&out);
    assert_eq!(k_bisect, k_lockstep, "bisect and lockstep disagree on the divergence point");
}
