//! Binary-level tests of the `xsweep` CI gate: `--bless` then
//! `--check` passes and exits 0; a doctored baseline fails with a
//! nonzero exit and names the drifting metric.

use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xsweep_gate_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn xsweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xsweep"))
}

#[test]
fn gate_passes_on_blessed_baseline_and_fails_on_drift() {
    let dir = tmp_dir("gate");
    let baseline = dir.join("baseline.json");
    let out = dir.join("sweep.json");

    // Bless a smoke baseline.
    let bless = xsweep()
        .args(["--profile", "smoke", "--jobs", "2"])
        .arg("--out")
        .arg(&out)
        .arg("--bless")
        .arg(&baseline)
        .output()
        .expect("run xsweep --bless");
    assert!(bless.status.success(), "bless failed: {}", String::from_utf8_lossy(&bless.stderr));
    assert!(baseline.exists(), "baseline written");

    // Checking against the freshly blessed baseline passes.
    let ok = xsweep()
        .args(["--profile", "smoke", "--jobs", "2"])
        .arg("--out")
        .arg(&out)
        .arg("--check")
        .arg(&baseline)
        .output()
        .expect("run xsweep --check");
    assert!(ok.status.success(), "gate must pass: {}", String::from_utf8_lossy(&ok.stdout));
    assert!(String::from_utf8_lossy(&ok.stdout).contains("check: OK"));

    // Doctor one architectural counter in the baseline: the gate must
    // fail, exit nonzero, and name the metric and job.
    let text = std::fs::read_to_string(&baseline).expect("read baseline");
    let needle = "\"sim.instructions\":";
    let at = text.find(needle).expect("baseline has instruction counts") + needle.len();
    let end = at + text[at..].find(|c: char| !c.is_ascii_digit()).expect("number ends");
    let v: u64 = text[at..end].parse().expect("counter parses");
    let doctored = format!("{}{}{}", &text[..at], v + 1, &text[end..]);
    let drift_path = dir.join("drifted.json");
    std::fs::write(&drift_path, doctored).expect("write doctored baseline");

    let fail = xsweep()
        .args(["--profile", "smoke", "--jobs", "2"])
        .arg("--out")
        .arg(&out)
        .arg("--check")
        .arg(&drift_path)
        .output()
        .expect("run xsweep --check (drift)");
    assert_eq!(fail.status.code(), Some(1), "seeded drift must exit 1");
    let stdout = String::from_utf8_lossy(&fail.stdout);
    assert!(stdout.contains("check: FAILED"), "{stdout}");
    assert!(stdout.contains("sim.instructions"), "drift table names the metric: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_does_not_change_the_report() {
    let dir = tmp_dir("jobs");
    let (a, b) = (dir.join("j1.json"), dir.join("j8.json"));
    for (jobs, path) in [("1", &a), ("8", &b)] {
        let run = xsweep()
            .args(["--profile", "smoke", "--jobs", jobs])
            .arg("--out")
            .arg(path)
            .output()
            .expect("run xsweep");
        assert!(run.status.success());
    }
    let (ja, jb) = (std::fs::read(&a).expect("read j1"), std::fs::read(&b).expect("read j8"));
    assert_eq!(ja, jb, "--jobs 1 and --jobs 8 reports must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}
