//! Tracing must be observation-only: attaching a sink (disabled or
//! live) must not perturb the simulated machine. A treeadd run with no
//! sink, with a `NullSink`, and with a live `AggregateSink` must reach
//! bit-identical architectural end-states — same registers, same cycle
//! count, same physical memory image.

use cheri_bench::parse_strategy;
use cheri_olden::dsl::{compile_bench, machine_config, DslBench};
use cheri_olden::OldenParams;
use cheri_os::{boot, KernelConfig, RunOutcome};
use cheri_trace::{names, shared, AggregateSink, AnySink, NullSink, SharedSink};

/// FNV-1a over the whole physical memory image.
fn mem_digest(machine: &beri_sim::Machine) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = [0u8; 4096];
    let mut addr = 0u64;
    while addr < machine.mem.size() {
        machine.mem.read_bytes(addr, &mut buf).unwrap();
        for b in buf {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        addr += buf.len() as u64;
    }
    hash
}

/// End-state of one instrumented (or not) treeadd run.
struct EndState {
    outcome: RunOutcome,
    gpr: [u64; 32],
    digest: u64,
}

fn run_treeadd(sink: Option<SharedSink>) -> EndState {
    let bench = DslBench::Treeadd;
    let params = OldenParams::scaled();
    let strategy = parse_strategy("cheri").unwrap();
    let program = compile_bench(bench, &params, strategy.as_ref()).unwrap();
    let machine = machine_config(bench, &params, strategy.as_ref());
    let user_top = (machine.mem_bytes as u64).max(16 << 20) + (16 << 20);
    let layout = cheri_os::ProcessLayout {
        stack_top: user_top - 4096,
        user_top,
        ..cheri_os::ProcessLayout::default()
    };
    let mut kernel = boot(KernelConfig { machine, layout, ..KernelConfig::default() });
    kernel.set_trace_sink(sink);
    let outcome = kernel.exec_and_run(&program).unwrap();
    EndState { outcome, gpr: kernel.machine().cpu.gpr, digest: mem_digest(kernel.machine()) }
}

#[test]
fn sinks_do_not_perturb_the_machine() {
    let bare = run_treeadd(None);
    let null = run_treeadd(Some(shared(AnySink::Null(NullSink))));
    let agg_sink = shared(AnySink::Aggregate(AggregateSink::new()));
    let agg = run_treeadd(Some(agg_sink.clone()));

    for other in [&null, &agg] {
        assert_eq!(bare.outcome.exit, other.outcome.exit);
        assert_eq!(bare.outcome.stats.cycles, other.outcome.stats.cycles);
        assert_eq!(bare.outcome.stats.instructions, other.outcome.stats.instructions);
        assert_eq!(bare.outcome.prints, other.outcome.prints);
        assert_eq!(bare.gpr, other.gpr);
        assert_eq!(bare.digest, other.digest, "physical memory images diverged");
    }

    // And the live sink must have aggregated exactly what the legacy
    // counters recorded.
    let streamed = match &*agg_sink.borrow() {
        AnySink::Aggregate(a) => a.snapshot(),
        _ => unreachable!(),
    };
    let legacy = &agg.outcome.metrics;
    for name in [
        names::INSTRUCTIONS,
        names::L1D_HITS,
        names::L1D_MISSES,
        names::L2_MISSES,
        names::TLB_REFILLS,
        names::TAG_CACHE_HITS,
        names::TAG_TABLE_WRITES,
        names::LOADS,
        names::STORES,
        names::SYSCALLS,
    ] {
        assert_eq!(streamed.counter(name), legacy.counter(name), "parity broke for {name}");
    }
    assert!(streamed.counter(names::INSTRUCTIONS) > 0);
}
