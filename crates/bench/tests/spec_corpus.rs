//! The committed specfuzz regression corpus, replayed as ordinary tests,
//! plus the end-to-end demonstration that a seeded semantic bug in the
//! simulator is caught, shrunk, and dumped as a replayable corpus case.

use beri_sim::FaultInjection;
use cheri_bench::specfuzz::{run_all_tiers, run_tier, shrink, Program, Tier, STEP_BUDGET};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_cases() -> Vec<(PathBuf, Program)> {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    cases.sort();
    cases
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("corpus case must be readable");
            let p = Program::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, p)
        })
        .collect()
}

/// Every committed corpus case must replay cleanly: the simulator and
/// the spec agree under every execution tier.
#[test]
fn committed_corpus_replays_clean() {
    let cases = corpus_cases();
    assert!(cases.len() >= 7, "the committed corpus went missing");
    for (path, p) in &cases {
        if let Err(d) = run_all_tiers(p, None, STEP_BUDGET) {
            panic!("{} diverged: {d}", path.display());
        }
    }
}

/// The corpus stays a closed loop: every case survives a serialization
/// round trip bit-for-bit at the program level.
#[test]
fn committed_corpus_round_trips() {
    for (path, p) in corpus_cases() {
        let again =
            Program::from_json(&p.to_json()).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(p.words, again.words, "{}", path.display());
        assert_eq!(p.format, again.format, "{}", path.display());
        assert_eq!(p.seed, again.seed, "{}", path.display());
    }
}

/// `sb $24, 0x1020($7)` — one byte into the granule at 0x9020, which
/// the fuzzing environment seeds with a tagged capability.
const SB_INTO_TAGGED_GRANULE: u32 = (0x28 << 26) | (7 << 21) | (24 << 16) | 0x1020;
const NOP: u32 = 0;

/// The acceptance loop for the lockstep harness itself: seed a real
/// semantic bug in the simulator (a byte store that fails to invalidate
/// the overlapping capability tag), and the fuzzer must catch it on
/// every tier, shrink it to the one guilty instruction, and dump a
/// corpus case that still reproduces after a JSON round trip.
#[test]
fn seeded_tag_bug_is_caught_shrunk_and_replayable() {
    let fault = Some(FaultInjection::KeepTagOnByteStore);
    let p = Program {
        seed: 0,
        format: cheri_spec::SpecFormat::C256,
        words: vec![SB_INTO_TAGGED_GRANULE, NOP, NOP, NOP, NOP, NOP, NOP, NOP],
        note: String::new(),
    };

    // Healthy simulator: the program is uninteresting.
    run_all_tiers(&p, None, STEP_BUDGET).expect("clean without the seeded bug");

    // Buggy simulator: every tier catches the stale tag.
    for tier in Tier::ALL {
        let d = run_tier(&p, tier, fault, STEP_BUDGET)
            .expect_err("the seeded bug must diverge on every tier");
        assert!(d.detail.contains("tag"), "unexpected divergence: {d}");
    }

    // Shrinking isolates the guilty store.
    let diverges = |c: &Program| run_all_tiers(c, fault, STEP_BUDGET).is_err();
    assert!(diverges(&p));
    let shrunk = shrink(&p, &diverges);
    assert_eq!(shrunk.words, vec![SB_INTO_TAGGED_GRANULE]);

    // The dump is a replayable corpus case: still diverging under the
    // bug after a round trip, clean on the healthy simulator.
    let replayed = Program::from_json(&shrunk.to_json()).expect("dump must parse");
    assert!(run_all_tiers(&replayed, fault, STEP_BUDGET).is_err());
    run_all_tiers(&replayed, None, STEP_BUDGET).expect("regression case replays clean");
}

/// The committed fault-found corpus cases are exactly the regression
/// the seeded bug produces: they replay clean on the healthy simulator
/// (checked above) and still catch the bug if it is ever reintroduced.
#[test]
fn fault_found_corpus_cases_still_catch_the_bug() {
    let fault = Some(FaultInjection::KeepTagOnByteStore);
    let found: Vec<_> = corpus_cases()
        .into_iter()
        .filter(|(path, _)| {
            path.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("tag-overlap-byte-store"))
        })
        .collect();
    assert_eq!(found.len(), 2, "expected the c256 and c128 fault-found cases");
    for (path, p) in found {
        assert!(
            run_all_tiers(&p, fault, STEP_BUDGET).is_err(),
            "{} no longer catches KeepTagOnByteStore",
            path.display()
        );
    }
}
