//! Simulator throughput benchmarks: host instructions-per-second for the
//! BERI interpreter, with and without capability traffic, and the cost
//! of the fetch/translate/check path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_asm::{reg, Asm};

/// Assembles a loop executing `iters` iterations of `body_len`-ish work,
/// ending in a syscall.
fn alu_loop(iters: i64) -> cheri_asm::Program {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li64(reg::T0, iters);
    a.li64(reg::V0, 0);
    a.bind(top).unwrap();
    a.daddu(reg::V0, reg::V0, reg::T0);
    a.xori(reg::V1, reg::V0, 0x55);
    a.daddiu(reg::T0, reg::T0, -1);
    a.bgtz(reg::T0, top);
    a.syscall(0);
    a.finalize().unwrap()
}

/// A loop doing a capability load + store per iteration.
fn cap_loop(iters: i64) -> cheri_asm::Program {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li64(reg::T1, 0x4000);
    a.cincbase(1, 0, reg::T1);
    a.li64(reg::T1, 0x1000);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T0, iters);
    a.bind(top).unwrap();
    a.csd(reg::T0, reg::ZERO, 0, 1);
    a.cld(reg::V0, reg::ZERO, 0, 1);
    a.daddiu(reg::T0, reg::T0, -1);
    a.bgtz(reg::T0, top);
    a.syscall(0);
    a.finalize().unwrap()
}

fn run_to_syscall(m: &mut Machine) {
    loop {
        match m.step().unwrap() {
            StepResult::Continue => {}
            StepResult::Syscall => break,
            other => panic!("{other:?}"),
        }
    }
}

fn bench_interp(c: &mut Criterion) {
    const ITERS: i64 = 20_000;
    let mut g = c.benchmark_group("interpreter");
    for (name, prog, per_iter) in
        [("alu_loop", alu_loop(ITERS), 5u64), ("cap_loop", cap_loop(ITERS), 5u64)]
    {
        g.throughput(Throughput::Elements(ITERS as u64 * per_iter));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m =
                    Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
                m.load_code(prog.base, &prog.words).unwrap();
                m.cpu.jump_to(prog.entry);
                run_to_syscall(&mut m);
                m.stats.instructions
            })
        });
    }
    g.finish();
}

fn bench_cap_manipulation_cycles(c: &mut Criterion) {
    // Section 4.4: capability manipulation is single-cycle; verify the
    // *simulated* cycle cost of a CIncBase/CSetLen pair stays at 2
    // cycles (plus fetch) and measure host overhead.
    let mut g = c.benchmark_group("cap_manipulation_machine");
    g.bench_function("cincbase_csetlen", |b| {
        let mut a = Asm::new(0x1000);
        a.li64(reg::T0, 0x4000);
        a.li64(reg::T1, 64);
        for _ in 0..64 {
            a.cincbase(1, 0, reg::T0);
            a.csetlen(1, 1, reg::T1);
        }
        a.syscall(0);
        let prog = a.finalize().unwrap();
        b.iter(|| {
            let mut m =
                Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
            m.load_code(prog.base, &prog.words).unwrap();
            m.cpu.jump_to(prog.entry);
            run_to_syscall(&mut m);
            // Architectural single-cycle claim: cycles ~= instructions
            // once the I-cache is warm.
            assert!(m.stats.cycles < m.stats.instructions + 80);
            m.stats.cycles
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_interp, bench_cap_manipulation_cycles
}
criterion_main!(benches);
