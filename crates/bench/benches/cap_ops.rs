//! Micro-benchmarks of the pure capability model: manipulation
//! operations (all single-cycle in hardware, Section 4.4), access
//! checks, and the 256-bit / 128-bit format conversions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cheri_core::{CapRegFile, Capability, Compressed128, Perms};

fn bench_manipulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cap_manipulation");
    let cap = Capability::new(0x1000, 1 << 20, Perms::ALL).unwrap();
    g.bench_function("inc_base", |b| b.iter(|| black_box(cap).inc_base(black_box(64)).unwrap()));
    g.bench_function("set_len", |b| b.iter(|| black_box(cap).set_len(black_box(128)).unwrap()));
    g.bench_function("and_perm", |b| {
        b.iter(|| black_box(cap).and_perm(black_box(Perms::LOAD)).unwrap())
    });
    g.bench_function("to_from_ptr", |b| {
        b.iter(|| {
            let p = black_box(cap).to_ptr(&cap);
            Capability::from_ptr(&cap, black_box(p)).unwrap()
        })
    });
    g.finish();
}

fn bench_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("cap_checks");
    let cap = Capability::new(0x1000, 1 << 20, Perms::ALL).unwrap();
    g.bench_function("data_access_ok", |b| {
        b.iter(|| cap.check_data_access(black_box(0x2000), 8, Perms::LOAD))
    });
    g.bench_function("data_access_oob", |b| {
        b.iter(|| cap.check_data_access(black_box(0x20_0000), 8, Perms::LOAD))
    });
    g.bench_function("execute", |b| b.iter(|| cap.check_execute(black_box(0x1004))));
    g.finish();
}

fn bench_formats(c: &mut Criterion) {
    let mut g = c.benchmark_group("cap_formats");
    let cap = Capability::new(0x1000, 1 << 16, Perms::ALL).unwrap();
    g.bench_function("encode_256", |b| b.iter(|| black_box(cap).to_bytes()));
    let bytes = cap.to_bytes();
    g.bench_function("decode_256", |b| b.iter(|| Capability::from_bytes(black_box(&bytes), true)));
    g.bench_function("compress_128", |b| {
        b.iter(|| Compressed128::try_from_cap(black_box(&cap)).unwrap())
    });
    let z = Compressed128::try_from_cap(&cap).unwrap();
    g.bench_function("decompress_128", |b| b.iter(|| black_box(z).decompress()));
    g.finish();
}

fn bench_regfile(c: &mut Criterion) {
    let mut g = c.benchmark_group("cap_regfile");
    // Context-switch cost: save/restore of the 33-capability state
    // (Section 4.1 notes the large file raises switch overhead).
    let file = CapRegFile::new();
    g.bench_function("clone_full_file", |b| b.iter(|| black_box(&file).clone()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_manipulation, bench_checks, bench_formats, bench_regfile
}
criterion_main!(benches);
