//! Throughput of the limit-study machinery: trace recording and
//! per-model evaluation over a mid-sized Olden trace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cheri_limit::models::{all_models, baseline};
use cheri_olden::{native, OldenParams};

fn bench_models(c: &mut Criterion) {
    let params = OldenParams::scaled();
    let trace = native::treeadd(&params).trace;
    let events = trace.events.len() as u64;

    let mut g = c.benchmark_group("limit_models");
    g.throughput(Throughput::Elements(events));
    g.bench_function("baseline", |b| b.iter(|| baseline(&trace)));
    for model in all_models() {
        g.bench_function(model.name(), |b| b.iter(|| model.simulate(&trace)));
    }
    g.finish();
}

fn bench_recording(c: &mut Criterion) {
    let params = OldenParams::scaled();
    let mut g = c.benchmark_group("trace_recording");
    g.bench_function("treeadd_record", |b| b.iter(|| native::treeadd(&params).trace.accesses()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_models, bench_recording
}
criterion_main!(benches);
