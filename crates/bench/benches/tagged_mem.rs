//! Micro-benchmarks of the tagged-memory substrate: the 257-bit
//! interface, the tag-clearing store path, and tag-cache behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cheri_core::{Capability, Perms};
use cheri_mem::TaggedMem;

fn bench_data_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("tagged_mem_data");
    let mut m = TaggedMem::new(1 << 20);
    g.bench_function("write_u64", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            m.write_u64(black_box(addr), 0x1234).unwrap();
            addr = (addr + 8) & 0xf_fff8;
        })
    });
    g.bench_function("read_u64", |b| b.iter(|| m.read_u64(black_box(0x100)).unwrap()));
    g.finish();
}

fn bench_cap_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("tagged_mem_caps");
    let mut m = TaggedMem::new(1 << 20);
    let cap = Capability::new(0x4000, 0x100, Perms::ALL).unwrap();
    g.bench_function("write_cap_hot", |b| b.iter(|| m.write_cap(black_box(0x800), &cap).unwrap()));
    g.bench_function("read_cap_hot", |b| b.iter(|| m.read_cap(black_box(0x800)).unwrap()));
    g.bench_function("write_cap_streaming", |b| {
        // Strides through 1 MB: every tag-cache line gets touched.
        let mut addr = 0u64;
        b.iter(|| {
            m.write_cap(black_box(addr), &cap).unwrap();
            addr = (addr + (1 << 14)) & 0xf_8000;
        })
    });
    g.finish();
}

fn bench_memcpy_semantics(c: &mut Criterion) {
    // The Section 4.2 memcpy: granule-wise copy preserving tags.
    let mut g = c.benchmark_group("tagged_mem_memcpy");
    let mut m = TaggedMem::new(1 << 20);
    let cap = Capability::new(0x4000, 0x100, Perms::ALL).unwrap();
    for i in 0..64 {
        m.write_cap(i * 32, &cap).unwrap();
    }
    g.bench_function("copy_2kb_with_tags", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                let (bytes, tag) = m.read_cap_raw(i * 32).unwrap();
                m.write_cap_raw(0x1_0000 + i * 32, &bytes, tag).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_data_path, bench_cap_path, bench_memcpy_semantics
}
criterion_main!(benches);
