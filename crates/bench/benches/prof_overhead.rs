//! Profiling overhead: end-to-end job throughput with the guest
//! profiler detached (the shipping configuration) vs attached, in both
//! simulator execution modes.
//!
//! The design target: with no profiler attached the only added cost is
//! one `Option::is_some()` branch per retired instruction, so the
//! detached numbers must sit within noise of the pre-profiler
//! `sim_throughput` baselines recorded in EXPERIMENTS.md. An attached
//! profiler pays for real per-PC counter updates and stack tracking and
//! is expected to be measurably slower. Both modes are asserted
//! architecturally identical on every sample — profiling is
//! observational.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use beri_sim::MachineConfig;
use cheri_olden::OldenParams;
use cheri_sweep::{run_spec_profiled, run_spec_with_config, JobSpec, StrategyKind};
use cheri_work::Workload;

fn spec(workload: Workload, strategy: StrategyKind) -> JobSpec {
    JobSpec::new(workload, strategy, OldenParams::scaled())
}

/// Runs `spec` (block cache forced to `enabled`) with or without a
/// profiler; returns (instructions, cycles) for the throughput
/// denominator and the transparency assertion.
fn run(spec: &JobSpec, enabled: bool, profiled: bool) -> (u64, u64) {
    let cfg = MachineConfig { block_cache: enabled, ..spec.machine_config() };
    let stats = if profiled {
        let (result, profile) = run_spec_profiled(spec, cfg).expect("bench workload runs");
        assert_eq!(
            profile.total.retired, result.run.outcome.stats.instructions,
            "profile must account for every retired instruction"
        );
        result.run.outcome.stats
    } else {
        run_spec_with_config(spec, cfg, None).expect("bench workload runs").run.outcome.stats
    };
    (stats.instructions, stats.cycles)
}

fn bench_prof_overhead(c: &mut Criterion) {
    let jobs = [
        ("treeadd/mips", spec(Workload::Treeadd, StrategyKind::Mips)),
        ("treeadd/cheri", spec(Workload::Treeadd, StrategyKind::Cheri256)),
    ];
    let mut g = c.benchmark_group("prof_overhead");
    for (name, job) in &jobs {
        let expect = run(job, true, false);
        assert_eq!(expect, run(job, true, true), "profiling must be transparent");
        g.throughput(Throughput::Elements(expect.0));
        for (mode, enabled) in [("block_cache", true), ("interpreter", false)] {
            g.bench_function(&format!("{name}/{mode}/prof_off"), |b| {
                b.iter(|| {
                    let got = run(job, enabled, false);
                    assert_eq!(got, expect);
                    got
                })
            });
            g.bench_function(&format!("{name}/{mode}/prof_on"), |b| {
                b.iter(|| {
                    let got = run(job, enabled, true);
                    assert_eq!(got, expect);
                    got
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_prof_overhead
}
criterion_main!(benches);
