//! End-to-end simulator throughput: host time to run a Figure 4-style
//! workload (an Olden benchmark compiled under a pointer strategy and
//! executed under the OS substrate) with the predecoded basic-block
//! cache on vs off.
//!
//! This is the bench behind the block-cache speedup claims in
//! EXPERIMENTS.md: both configurations execute the exact same guest
//! work (the block cache is architecturally transparent — asserted
//! here on every sample), so the throughput ratio is the interpreter
//! overhead the cache removes. `xsweep --perf` measures the same
//! quantity over the whole experiment matrix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use beri_sim::MachineConfig;
use cheri_olden::OldenParams;
use cheri_sweep::{run_spec_with_config, JobSpec, StrategyKind};
use cheri_work::Workload;

/// One fig4-style job: workload × strategy at smoke-profile size (small
/// enough for Criterion's sample counts, big enough that the guest loop
/// dominates compile/boot).
fn spec(workload: Workload, strategy: StrategyKind) -> JobSpec {
    JobSpec::new(workload, strategy, OldenParams::scaled())
}

/// Runs `spec` with the block cache forced to `enabled`; returns
/// (instructions, cycles) for the throughput denominator and the
/// transparency assertion.
fn run(spec: &JobSpec, enabled: bool) -> (u64, u64) {
    let cfg = MachineConfig { block_cache: enabled, ..spec.machine_config() };
    let result = run_spec_with_config(spec, cfg, None).expect("bench workload runs");
    (result.run.outcome.stats.instructions, result.run.outcome.stats.cycles)
}

fn bench_sim_throughput(c: &mut Criterion) {
    let jobs = [
        ("treeadd/mips", spec(Workload::Treeadd, StrategyKind::Mips)),
        ("treeadd/cheri", spec(Workload::Treeadd, StrategyKind::Cheri256)),
        ("mst/cheri", spec(Workload::Mst, StrategyKind::Cheri256)),
    ];
    let mut g = c.benchmark_group("sim_throughput");
    for (name, job) in &jobs {
        // The guest retires the same instruction stream either way; use
        // it as the element count so Criterion reports guest
        // instructions per host second.
        let (instructions, cycles) = run(job, true);
        assert_eq!((instructions, cycles), run(job, false), "block cache must be transparent");
        g.throughput(Throughput::Elements(instructions));
        g.bench_function(&format!("{name}/block_cache"), |b| {
            b.iter(|| {
                let got = run(job, true);
                assert_eq!(got, (instructions, cycles));
                got
            })
        });
        g.bench_function(&format!("{name}/interpreter"), |b| {
            b.iter(|| {
                let got = run(job, false);
                assert_eq!(got, (instructions, cycles));
                got
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_sim_throughput
}
criterion_main!(benches);
