//! Tracing overhead: simulator throughput with no sink attached, with a
//! [`NullSink`] (disabled — the common production configuration), and
//! with a live [`AggregateSink`].
//!
//! The design target: a NullSink costs one branch per emission site, so
//! its throughput must sit within noise of the un-instrumented
//! baseline. The aggregate sink pays for real counter updates and is
//! expected to be measurably (but not catastrophically) slower.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_asm::{reg, Asm};
use cheri_trace::{shared, AggregateSink, AnySink, NullSink, SharedSink};

/// A memory-heavy loop: every iteration is a load + store + ALU work,
/// exercising the cache/tag emission paths, ending in a syscall.
fn mem_loop(iters: i64) -> cheri_asm::Program {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li64(reg::T1, 0x8000);
    a.li64(reg::T0, iters);
    a.bind(top).unwrap();
    a.sd(reg::T0, reg::T1, 0);
    a.ld(reg::V0, reg::T1, 8);
    a.daddu(reg::V1, reg::V0, reg::T0);
    a.daddiu(reg::T0, reg::T0, -1);
    a.bgtz(reg::T0, top);
    a.syscall(0);
    a.finalize().unwrap()
}

fn run_to_syscall(m: &mut Machine) {
    loop {
        match m.step().unwrap() {
            StepResult::Continue => {}
            StepResult::Syscall => break,
            other => panic!("{other:?}"),
        }
    }
}

fn run_with_sink(prog: &cheri_asm::Program, sink: Option<SharedSink>) -> u64 {
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    m.set_trace_sink(sink);
    m.load_code(prog.base, &prog.words).unwrap();
    m.cpu.jump_to(prog.entry);
    run_to_syscall(&mut m);
    m.stats.instructions
}

fn bench_trace_overhead(c: &mut Criterion) {
    const ITERS: i64 = 20_000;
    let prog = mem_loop(ITERS);
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements(ITERS as u64 * 6));

    g.bench_function("baseline_no_sink", |b| b.iter(|| run_with_sink(&prog, None)));
    g.bench_function("null_sink", |b| {
        b.iter(|| run_with_sink(&prog, Some(shared(AnySink::Null(NullSink)))))
    });
    g.bench_function("aggregate_sink", |b| {
        b.iter(|| run_with_sink(&prog, Some(shared(AnySink::Aggregate(AggregateSink::new())))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_trace_overhead
}
criterion_main!(benches);
