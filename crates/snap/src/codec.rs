//! Canonical JSON codec for the snapshot state tree.
//!
//! The writer emits every struct with its fields in a fixed order
//! (compact, no whitespace), so a given state has exactly one byte
//! representation — [`crate::StateHash`] is defined over these bytes.
//! The reader is built on [`cheri_trace::json::parse`] and validates
//! schema/version, vector shapes and field presence, returning
//! [`SnapError`] with a field path rather than panicking on malformed
//! input.
//!
//! Large vectors (memory words, tag words, cache lines, capability
//! files) are emitted as *flat* arrays of unsigned integers — e.g. one
//! capability is five consecutive numbers `[tag, w0, w1, w2, w3]` —
//! keeping the files dense and the parser allocation-light.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cheri_trace::json::{parse, Json, JsonWriter};

use crate::state::{
    CacheLineState, CacheState, CapState, ConfigState, ContextState, CpuState, DomainState,
    HierarchyState, KernelState, MachineState, MemState, PhaseState, PredictorState, Snapshot,
    TagCacheLineState, TlbEntryState, TlbState,
};
use crate::{SnapError, StateHash, SCHEMA, VERSION};

type Obj = BTreeMap<String, Json>;

// ---------------------------------------------------------------- write

fn u64_list<I: IntoIterator<Item = u64>>(vals: I) -> String {
    let mut s = String::from("[");
    let mut first = true;
    for v in vals {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

fn pairs_list(pairs: &[(u64, u64)]) -> String {
    u64_list(pairs.iter().flat_map(|&(c, v)| [c, v]))
}

fn caps_list(caps: &[CapState]) -> String {
    u64_list(
        caps.iter()
            .flat_map(|c| [u64::from(c.tag), c.words[0], c.words[1], c.words[2], c.words[3]]),
    )
}

fn config_json(c: &ConfigState) -> String {
    let mut w = JsonWriter::object();
    w.u64_field("mem_bytes", c.mem_bytes);
    w.u64_field("tlb_entries", c.tlb_entries);
    w.raw_field("l1", &u64_list(c.l1));
    w.raw_field("l2", &u64_list(c.l2));
    w.u64_field("l2_latency", c.l2_latency);
    w.u64_field("dram_latency", c.dram_latency);
    w.bool_field("cheri_enabled", c.cheri_enabled);
    w.u64_field("tag_cache_bytes", c.tag_cache_bytes);
    w.u64_field("cap_size", c.cap_size);
    w.u64_field("bht_entries", c.bht_entries);
    w.u64_field("mul_penalty", c.mul_penalty);
    w.u64_field("div_penalty", c.div_penalty);
    w.close()
}

fn cpu_json(c: &CpuState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field("gpr", &u64_list(c.gpr));
    w.u64_field("hi", c.hi);
    w.u64_field("lo", c.lo);
    w.u64_field("pc", c.pc);
    w.u64_field("next_pc", c.next_pc);
    w.raw_field("cp0", &u64_list(c.cp0));
    w.raw_field("caps", &caps_list(&c.caps));
    match c.ll_reservation {
        Some(addr) => {
            w.bool_field("ll_armed", true);
            w.u64_field("ll_addr", addr);
        }
        None => {
            w.bool_field("ll_armed", false);
            w.u64_field("ll_addr", 0);
        }
    }
    w.close()
}

fn tlb_json(t: &TlbState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field(
        "entries",
        &u64_list(
            t.entries
                .iter()
                .flat_map(|e| [e.vpn2, e.pfn0, e.flags0, e.pfn1, e.flags1, u64::from(e.present)]),
        ),
    );
    w.u64_field("next_random", t.next_random);
    w.u64_field("misses", t.misses);
    w.close()
}

fn cache_json(c: &CacheState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field(
        "lines",
        &u64_list(
            c.lines
                .iter()
                .flat_map(|l| [u64::from(l.valid) | (u64::from(l.dirty) << 1), l.tag, l.lru]),
        ),
    );
    w.u64_field("tick", c.tick);
    w.u64_field("hits", c.hits);
    w.u64_field("misses", c.misses);
    w.u64_field("writebacks", c.writebacks);
    w.u64_field("mru_block", c.mru_block);
    w.u64_field("mru_index", c.mru_index);
    w.close()
}

fn hierarchy_json(h: &HierarchyState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field("l1i", &cache_json(&h.l1i));
    w.raw_field("l1d", &cache_json(&h.l1d));
    w.raw_field("l2", &cache_json(&h.l2));
    w.u64_field("dram_bytes", h.dram_bytes);
    w.u64_field("dram_accesses", h.dram_accesses);
    w.close()
}

fn mem_json(m: &MemState) -> String {
    let mut w = JsonWriter::object();
    w.u64_field("bytes", m.bytes);
    w.u64_field("granule", m.granule);
    w.raw_field("words", &pairs_list(&m.words));
    w.raw_field("tags", &pairs_list(&m.tags));
    w.raw_field(
        "tag_cache",
        &u64_list(
            m.tag_cache
                .iter()
                .flat_map(|l| [u64::from(l.valid) | (u64::from(l.dirty) << 1), l.line_index]),
        ),
    );
    w.raw_field("tag_stats", &u64_list(m.tag_stats));
    w.close()
}

fn machine_json(m: &MachineState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field("config", &config_json(&m.config));
    w.raw_field("cpu", &cpu_json(&m.cpu));
    w.raw_field("tlb", &tlb_json(&m.tlb));
    w.raw_field("hierarchy", &hierarchy_json(&m.hierarchy));
    w.raw_field("predictor", &pairs_list(&m.predictor.counters));
    w.raw_field("stats", &u64_list(m.stats));
    w.bool_field("bare", m.bare);
    w.raw_field("mem", &mem_json(&m.mem));
    w.close()
}

fn context_json(c: &ContextState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field("gpr", &u64_list(c.gpr));
    w.u64_field("hi", c.hi);
    w.u64_field("lo", c.lo);
    w.u64_field("pc", c.pc);
    w.u64_field("next_pc", c.next_pc);
    w.raw_field("caps", &caps_list(&c.caps));
    w.close()
}

fn domain_json(d: &DomainState) -> String {
    let mut w = JsonWriter::object();
    w.str_field("name", &d.name);
    w.u64_field("entry", d.entry);
    w.raw_field("c0", &caps_list(std::slice::from_ref(&d.c0)));
    w.raw_field("pcc", &caps_list(std::slice::from_ref(&d.pcc)));
    w.u64_field("stack_top", d.stack_top);
    w.close()
}

fn kernel_json(k: &KernelState) -> String {
    let mut w = JsonWriter::object();
    w.raw_field("layout", &u64_list(k.layout));
    w.u64_field("tlb_refill_cycles", k.tlb_refill_cycles);
    w.u64_field("syscall_cycles", k.syscall_cycles);
    w.raw_field("page_table", &pairs_list(&k.page_table));
    w.u64_field("next_frame", k.next_frame);
    w.u64_field("brk", k.brk);
    w.u64_field("execs", k.execs);
    w.u64_field("domain_calls", k.domain_calls);
    w.u64_field("domain_returns", k.domain_returns);
    w.raw_field(
        "phases",
        &u64_list(k.phases.iter().flat_map(|p| {
            let mut row = [0u64; 16];
            row[0] = p.id;
            row[1..].copy_from_slice(&p.stats);
            row
        })),
    );
    w.raw_field("prints", &u64_list(k.prints.iter().copied()));
    w.str_field("console", &k.console);
    {
        let mut arr = String::from("[");
        for (i, d) in k.domains.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            arr.push_str(&domain_json(d));
        }
        arr.push(']');
        w.raw_field("domains", &arr);
    }
    {
        let mut arr = String::from("[");
        for (i, c) in k.domain_stack.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            arr.push_str(&context_json(c));
        }
        arr.push(']');
        w.raw_field("domain_stack", &arr);
    }
    w.raw_field("domain_id_stack", &u64_list(k.domain_id_stack.iter().copied()));
    w.close()
}

// ----------------------------------------------------------------- read

fn ctx(path: &str, what: &str) -> SnapError {
    SnapError(format!("{path}: {what}"))
}

fn as_obj<'a>(j: &'a Json, path: &str) -> Result<&'a Obj, SnapError> {
    j.as_obj().ok_or_else(|| ctx(path, "expected an object"))
}

fn field<'a>(o: &'a Obj, key: &str, path: &str) -> Result<&'a Json, SnapError> {
    o.get(key).ok_or_else(|| ctx(path, &format!("missing field '{key}'")))
}

fn num(o: &Obj, key: &str, path: &str) -> Result<u64, SnapError> {
    field(o, key, path)?.as_u64().ok_or_else(|| ctx(path, &format!("'{key}' must be a number")))
}

fn flag(o: &Obj, key: &str, path: &str) -> Result<bool, SnapError> {
    match field(o, key, path)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(ctx(path, &format!("'{key}' must be a boolean"))),
    }
}

fn text(o: &Obj, key: &str, path: &str) -> Result<String, SnapError> {
    field(o, key, path)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ctx(path, &format!("'{key}' must be a string")))
}

fn u64_vec(j: &Json, path: &str) -> Result<Vec<u64>, SnapError> {
    let arr = j.as_arr().ok_or_else(|| ctx(path, "expected an array"))?;
    arr.iter().map(|v| v.as_u64().ok_or_else(|| ctx(path, "expected numbers"))).collect()
}

fn u64_vec_field(o: &Obj, key: &str, path: &str) -> Result<Vec<u64>, SnapError> {
    u64_vec(field(o, key, path)?, &format!("{path}.{key}"))
}

fn fixed<const N: usize>(o: &Obj, key: &str, path: &str) -> Result<[u64; N], SnapError> {
    let v = u64_vec_field(o, key, path)?;
    v.try_into().map_err(|_| ctx(path, &format!("'{key}' must have exactly {N} elements")))
}

fn pair_vec(o: &Obj, key: &str, path: &str) -> Result<Vec<(u64, u64)>, SnapError> {
    let flat = u64_vec_field(o, key, path)?;
    if flat.len() % 2 != 0 {
        return Err(ctx(path, &format!("'{key}' must have an even number of elements")));
    }
    Ok(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

fn caps_from(flat: &[u64], path: &str) -> Result<Vec<CapState>, SnapError> {
    if !flat.len().is_multiple_of(5) {
        return Err(ctx(path, "capability list length must be a multiple of 5"));
    }
    Ok(flat
        .chunks_exact(5)
        .map(|c| CapState { tag: c[0] != 0, words: [c[1], c[2], c[3], c[4]] })
        .collect())
}

fn one_cap(o: &Obj, key: &str, path: &str) -> Result<CapState, SnapError> {
    let caps = caps_from(&u64_vec_field(o, key, path)?, path)?;
    match caps.as_slice() {
        [c] => Ok(*c),
        _ => Err(ctx(path, &format!("'{key}' must hold exactly one capability"))),
    }
}

fn config_from(j: &Json, path: &str) -> Result<ConfigState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(ConfigState {
        mem_bytes: num(o, "mem_bytes", path)?,
        tlb_entries: num(o, "tlb_entries", path)?,
        l1: fixed(o, "l1", path)?,
        l2: fixed(o, "l2", path)?,
        l2_latency: num(o, "l2_latency", path)?,
        dram_latency: num(o, "dram_latency", path)?,
        cheri_enabled: flag(o, "cheri_enabled", path)?,
        tag_cache_bytes: num(o, "tag_cache_bytes", path)?,
        cap_size: num(o, "cap_size", path)?,
        bht_entries: num(o, "bht_entries", path)?,
        mul_penalty: num(o, "mul_penalty", path)?,
        div_penalty: num(o, "div_penalty", path)?,
    })
}

fn cpu_from(j: &Json, path: &str) -> Result<CpuState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(CpuState {
        gpr: fixed(o, "gpr", path)?,
        hi: num(o, "hi", path)?,
        lo: num(o, "lo", path)?,
        pc: num(o, "pc", path)?,
        next_pc: num(o, "next_pc", path)?,
        cp0: fixed(o, "cp0", path)?,
        caps: caps_from(&u64_vec_field(o, "caps", path)?, path)?,
        ll_reservation: if flag(o, "ll_armed", path)? {
            Some(num(o, "ll_addr", path)?)
        } else {
            None
        },
    })
}

fn tlb_from(j: &Json, path: &str) -> Result<TlbState, SnapError> {
    let o = as_obj(j, path)?;
    let flat = u64_vec_field(o, "entries", path)?;
    if flat.len() % 6 != 0 {
        return Err(ctx(path, "'entries' length must be a multiple of 6"));
    }
    Ok(TlbState {
        entries: flat
            .chunks_exact(6)
            .map(|c| TlbEntryState {
                vpn2: c[0],
                pfn0: c[1],
                flags0: c[2],
                pfn1: c[3],
                flags1: c[4],
                present: c[5] != 0,
            })
            .collect(),
        next_random: num(o, "next_random", path)?,
        misses: num(o, "misses", path)?,
    })
}

fn cache_from(j: &Json, path: &str) -> Result<CacheState, SnapError> {
    let o = as_obj(j, path)?;
    let flat = u64_vec_field(o, "lines", path)?;
    if flat.len() % 3 != 0 {
        return Err(ctx(path, "'lines' length must be a multiple of 3"));
    }
    Ok(CacheState {
        lines: flat
            .chunks_exact(3)
            .map(|c| CacheLineState {
                valid: c[0] & 1 != 0,
                dirty: c[0] & 2 != 0,
                tag: c[1],
                lru: c[2],
            })
            .collect(),
        tick: num(o, "tick", path)?,
        hits: num(o, "hits", path)?,
        misses: num(o, "misses", path)?,
        writebacks: num(o, "writebacks", path)?,
        mru_block: num(o, "mru_block", path)?,
        mru_index: num(o, "mru_index", path)?,
    })
}

fn hierarchy_from(j: &Json, path: &str) -> Result<HierarchyState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(HierarchyState {
        l1i: cache_from(field(o, "l1i", path)?, &format!("{path}.l1i"))?,
        l1d: cache_from(field(o, "l1d", path)?, &format!("{path}.l1d"))?,
        l2: cache_from(field(o, "l2", path)?, &format!("{path}.l2"))?,
        dram_bytes: num(o, "dram_bytes", path)?,
        dram_accesses: num(o, "dram_accesses", path)?,
    })
}

fn mem_from(j: &Json, path: &str) -> Result<MemState, SnapError> {
    let o = as_obj(j, path)?;
    let flat = u64_vec_field(o, "tag_cache", path)?;
    if flat.len() % 2 != 0 {
        return Err(ctx(path, "'tag_cache' length must be even"));
    }
    Ok(MemState {
        bytes: num(o, "bytes", path)?,
        granule: num(o, "granule", path)?,
        words: pair_vec(o, "words", path)?,
        tags: pair_vec(o, "tags", path)?,
        tag_cache: flat
            .chunks_exact(2)
            .map(|c| TagCacheLineState {
                valid: c[0] & 1 != 0,
                dirty: c[0] & 2 != 0,
                line_index: c[1],
            })
            .collect(),
        tag_stats: fixed(o, "tag_stats", path)?,
    })
}

fn machine_from(j: &Json, path: &str) -> Result<MachineState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(MachineState {
        config: config_from(field(o, "config", path)?, &format!("{path}.config"))?,
        cpu: cpu_from(field(o, "cpu", path)?, &format!("{path}.cpu"))?,
        tlb: tlb_from(field(o, "tlb", path)?, &format!("{path}.tlb"))?,
        hierarchy: hierarchy_from(field(o, "hierarchy", path)?, &format!("{path}.hierarchy"))?,
        predictor: PredictorState { counters: pair_vec(o, "predictor", path)? },
        stats: fixed(o, "stats", path)?,
        bare: flag(o, "bare", path)?,
        mem: mem_from(field(o, "mem", path)?, &format!("{path}.mem"))?,
    })
}

fn context_from(j: &Json, path: &str) -> Result<ContextState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(ContextState {
        gpr: fixed(o, "gpr", path)?,
        hi: num(o, "hi", path)?,
        lo: num(o, "lo", path)?,
        pc: num(o, "pc", path)?,
        next_pc: num(o, "next_pc", path)?,
        caps: caps_from(&u64_vec_field(o, "caps", path)?, path)?,
    })
}

fn domain_from(j: &Json, path: &str) -> Result<DomainState, SnapError> {
    let o = as_obj(j, path)?;
    Ok(DomainState {
        name: text(o, "name", path)?,
        entry: num(o, "entry", path)?,
        c0: one_cap(o, "c0", path)?,
        pcc: one_cap(o, "pcc", path)?,
        stack_top: num(o, "stack_top", path)?,
    })
}

fn kernel_from(j: &Json, path: &str) -> Result<KernelState, SnapError> {
    let o = as_obj(j, path)?;
    let phase_flat = u64_vec_field(o, "phases", path)?;
    if phase_flat.len() % 16 != 0 {
        return Err(ctx(path, "'phases' length must be a multiple of 16"));
    }
    let phases = phase_flat
        .chunks_exact(16)
        .map(|c| {
            let mut stats = [0u64; 15];
            stats.copy_from_slice(&c[1..]);
            PhaseState { id: c[0], stats }
        })
        .collect();
    let domains = field(o, "domains", path)?
        .as_arr()
        .ok_or_else(|| ctx(path, "'domains' must be an array"))?
        .iter()
        .enumerate()
        .map(|(i, d)| domain_from(d, &format!("{path}.domains[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let domain_stack = field(o, "domain_stack", path)?
        .as_arr()
        .ok_or_else(|| ctx(path, "'domain_stack' must be an array"))?
        .iter()
        .enumerate()
        .map(|(i, c)| context_from(c, &format!("{path}.domain_stack[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(KernelState {
        layout: fixed(o, "layout", path)?,
        tlb_refill_cycles: num(o, "tlb_refill_cycles", path)?,
        syscall_cycles: num(o, "syscall_cycles", path)?,
        page_table: pair_vec(o, "page_table", path)?,
        next_frame: num(o, "next_frame", path)?,
        brk: num(o, "brk", path)?,
        execs: num(o, "execs", path)?,
        domain_calls: num(o, "domain_calls", path)?,
        domain_returns: num(o, "domain_returns", path)?,
        phases,
        prints: u64_vec_field(o, "prints", path)?,
        console: text(o, "console", path)?,
        domains,
        domain_stack,
        domain_id_stack: u64_vec_field(o, "domain_id_stack", path)?,
    })
}

// ------------------------------------------------------------- public API

impl MachineState {
    /// Canonical serialization of the machine fragment alone (used by
    /// divergence dumps, which compare machines without kernel state).
    #[must_use]
    pub fn to_json(&self) -> String {
        machine_json(self)
    }

    /// Decodes a standalone machine fragment.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on malformed input.
    pub fn from_json(text: &str) -> Result<MachineState, SnapError> {
        let j = parse(text).map_err(SnapError)?;
        machine_from(&j, "machine")
    }

    /// FNV-1a hash of the canonical serialization.
    #[must_use]
    pub fn state_hash(&self) -> StateHash {
        StateHash::of_bytes(self.to_json().as_bytes())
    }
}

impl Snapshot {
    /// Canonical serialization: a single compact JSON object with
    /// `schema`/`version` first.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.str_field("schema", SCHEMA);
        w.u64_field("version", VERSION);
        w.raw_field("machine", &machine_json(&self.machine));
        match &self.kernel {
            Some(k) => w.raw_field("kernel", &kernel_json(k)),
            None => w.raw_field("kernel", "null"),
        }
        w.close()
    }

    /// Decodes a snapshot, rejecting unknown schemas and versions.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on malformed input or a schema/version mismatch.
    pub fn from_json(text: &str) -> Result<Snapshot, SnapError> {
        let j = parse(text).map_err(SnapError)?;
        let o = as_obj(&j, "snapshot")?;
        let schema = text_field_or(o, "schema")?;
        if schema != SCHEMA {
            return Err(SnapError(format!("unsupported schema '{schema}' (want '{SCHEMA}')")));
        }
        let version = num(o, "version", "snapshot")?;
        if version != VERSION {
            return Err(SnapError(format!("unsupported version {version} (want {VERSION})")));
        }
        let machine = machine_from(field(o, "machine", "snapshot")?, "machine")?;
        let kernel = match field(o, "kernel", "snapshot")? {
            Json::Null => None,
            k => Some(kernel_from(k, "kernel")?),
        };
        Ok(Snapshot { machine, kernel })
    }

    /// FNV-1a hash of the canonical serialization (machine + kernel).
    #[must_use]
    pub fn state_hash(&self) -> StateHash {
        StateHash::of_bytes(self.to_json().as_bytes())
    }
}

fn text_field_or(o: &Obj, key: &str) -> Result<String, SnapError> {
    text(o, key, "snapshot")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle_encode;

    fn sample_machine() -> MachineState {
        let cap = |tag: bool, seed: u64| CapState {
            tag,
            words: [seed, seed.wrapping_mul(3), seed.wrapping_add(7), !seed],
        };
        let cache = CacheState {
            lines: vec![
                CacheLineState { valid: true, dirty: false, tag: 0x40, lru: 3 },
                CacheLineState { valid: true, dirty: true, tag: 0x99, lru: 9 },
                CacheLineState::default(),
            ],
            tick: 12,
            hits: 100,
            misses: 7,
            writebacks: 2,
            mru_block: u64::MAX,
            mru_index: 1,
        };
        MachineState {
            config: ConfigState {
                mem_bytes: 1 << 20,
                tlb_entries: 4,
                l1: [16384, 32, 4],
                l2: [65536, 32, 8],
                l2_latency: 2,
                dram_latency: 6,
                cheri_enabled: true,
                tag_cache_bytes: 8192,
                cap_size: 32,
                bht_entries: 512,
                mul_penalty: 3,
                div_penalty: 16,
            },
            cpu: CpuState {
                gpr: std::array::from_fn(|i| i as u64 * 0x1111),
                hi: 5,
                lo: 6,
                pc: 0x1_0000,
                next_pc: 0x1_0004,
                cp0: std::array::from_fn(|i| i as u64),
                caps: (0..33).map(|i| cap(i % 2 == 0, i)).collect(),
                ll_reservation: Some(0x2_0000),
            },
            tlb: TlbState {
                entries: vec![
                    TlbEntryState {
                        vpn2: 8,
                        pfn0: 16,
                        flags0: 0b11,
                        pfn1: 17,
                        flags1: 0b1111,
                        present: true,
                    },
                    TlbEntryState::default(),
                ],
                next_random: 1,
                misses: 42,
            },
            hierarchy: HierarchyState {
                l1i: cache.clone(),
                l1d: cache.clone(),
                l2: cache,
                dram_bytes: 4096,
                dram_accesses: 128,
            },
            predictor: PredictorState { counters: vec![(510, 1), (1, 3), (1, 0)] },
            stats: std::array::from_fn(|i| i as u64 * 10),
            bare: false,
            mem: MemState {
                bytes: 64,
                granule: 32,
                words: rle_encode([0, 0, 0xdead_beef, 0, 0, 0, 0, u64::MAX]),
                tags: rle_encode([0b10]),
                tag_cache: vec![
                    TagCacheLineState { valid: true, dirty: true, line_index: 3 },
                    TagCacheLineState::default(),
                ],
                tag_stats: [1, 2, 3, 4, 5],
            },
        }
    }

    fn sample_kernel() -> KernelState {
        KernelState {
            layout: [0x1_0000, 0x2_0000, 0x4_0000, 0xff_f000, 0x100_0000],
            tlb_refill_cycles: 30,
            syscall_cycles: 120,
            page_table: vec![(0x10, 16), (0x20, 17)],
            next_frame: 18,
            brk: 0x4_1000,
            execs: 1,
            domain_calls: 2,
            domain_returns: 2,
            phases: vec![
                PhaseState { id: 1, stats: [1; 15] },
                PhaseState { id: 2, stats: std::array::from_fn(|i| i as u64) },
            ],
            prints: vec![0xabc, 0],
            console: "hello \"world\"\n".into(),
            domains: vec![DomainState {
                name: "sandbox".into(),
                entry: 0x1_2000,
                c0: CapState { tag: true, words: [1, 2, 3, 4] },
                pcc: CapState { tag: true, words: [5, 6, 7, 8] },
                stack_top: 0x8_0000,
            }],
            domain_stack: vec![ContextState {
                gpr: [7; 32],
                hi: 0,
                lo: 0,
                pc: 0x1_0040,
                next_pc: 0x1_0044,
                caps: (0..33).map(|i| CapState { tag: false, words: [i, 0, 0, 0] }).collect(),
            }],
            domain_id_stack: vec![1],
        }
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let snap = Snapshot { machine: sample_machine(), kernel: Some(sample_kernel()) };
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // Canonical: re-serializing the parse yields the same bytes,
        // hence the same hash.
        assert_eq!(back.to_json(), text);
        assert_eq!(back.state_hash(), snap.state_hash());
    }

    #[test]
    fn machine_fragment_roundtrips() {
        let m = sample_machine();
        let back = MachineState::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.state_hash(), m.state_hash());
    }

    #[test]
    fn kernel_none_roundtrips() {
        let snap = Snapshot { machine: sample_machine(), kernel: None };
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.kernel, None);
        assert_eq!(back, snap);
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let base = Snapshot { machine: sample_machine(), kernel: Some(sample_kernel()) };
        let mut twiddled = base.clone();
        twiddled.machine.cpu.gpr[4] ^= 1;
        assert_ne!(twiddled.state_hash(), base.state_hash());
        let mut twiddled = base.clone();
        twiddled.machine.mem.tags = rle_encode([0b11]);
        assert_ne!(twiddled.state_hash(), base.state_hash());
        let mut twiddled = base.clone();
        if let Some(k) = &mut twiddled.kernel {
            k.console.push('x');
        }
        assert_ne!(twiddled.state_hash(), base.state_hash());
    }

    #[test]
    fn rejects_wrong_schema_and_version() {
        let snap = Snapshot { machine: sample_machine(), kernel: None };
        let text = snap.to_json();
        let bad_schema = text.replace("cheri-snap/v1", "cheri-snap/v9");
        assert!(Snapshot::from_json(&bad_schema).unwrap_err().0.contains("unsupported schema"));
        let bad_version = text.replace("\"version\":1", "\"version\":2");
        assert!(Snapshot::from_json(&bad_version).unwrap_err().0.contains("unsupported version"));
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn shape_violations_are_reported_with_context() {
        let snap = Snapshot { machine: sample_machine(), kernel: None };
        // Truncate the GPR file: 32 → 31 entries.
        let text = snap.to_json().replace("\"hi\":5", "\"hi\":5,\"bogus\":1");
        // Unknown extra fields are tolerated (forward-compatible reads
        // within a version are not needed, but must not crash).
        assert!(Snapshot::from_json(&text).is_ok());
        let err = MachineState::from_json("{\"config\":{}}").unwrap_err();
        assert!(err.0.contains("machine.config"), "err: {err}");
    }
}
