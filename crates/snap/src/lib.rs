//! **cheri-snap** — versioned, fully deterministic serialization of
//! complete machine state.
//!
//! The paper's evaluation reruns an identical boot + workload-setup
//! prefix for every cell of the workload × strategy × capwidth ×
//! tagcache matrix. This crate is the persistence layer that makes the
//! prefix reusable: a [`Snapshot`] captures *everything* the simulator
//! and the `cheri-os` kernel need to resume a run bit-exactly —
//! GPRs/CP0 and the CP2 capability register file, the TLB, every
//! pipeline/statistics counter, cache and tag-cache contents, tagged
//! physical memory (run-length compressed, with the tag table), and
//! kernel state (page table, domains, saved contexts, phase records).
//!
//! Three invariants define the format:
//!
//! 1. **Deterministic**: a given machine state has exactly one
//!    serialization. Maps are emitted sorted, fields in a fixed order,
//!    numbers as unsigned decimals. Equal states produce equal bytes.
//! 2. **Versioned**: every snapshot carries `schema: "cheri-snap/v1"`
//!    and an integer `version`; the decoder rejects anything else
//!    rather than guessing.
//! 3. **Complete for resumption, silent on harness knobs**: everything
//!    architectural or timing-visible is captured; reconstructible
//!    acceleration state (micro-TLBs, predecoded block cache) and
//!    harness configuration (trace sinks, runaway budgets, the
//!    block-cache enable flag) are deliberately *excluded*, so the same
//!    snapshot hashes identically whichever way the simulator is
//!    driven.
//!
//! Serialization reuses the workspace's hand-rolled JSON
//! ([`cheri_trace::json`]) — the build is offline, so there is no
//! serde. [`StateHash`] (64-bit FNV-1a over the canonical bytes) gives
//! cheap equality for lockstep comparison and divergence bisection.

mod codec;
mod state;

pub use state::{
    CacheLineState, CacheState, CapState, ConfigState, ContextState, CpuState, DomainState,
    HierarchyState, KernelState, MachineState, MemState, PhaseState, PredictorState, Snapshot,
    TagCacheLineState, TlbEntryState, TlbState,
};

/// Schema identifier written into (and required from) every snapshot.
pub const SCHEMA: &str = "cheri-snap/v1";

/// Format version written into (and required from) every snapshot.
pub const VERSION: u64 = 1;

/// An error from decoding a snapshot or restoring one into a machine
/// whose configuration does not match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapError(pub String);

impl SnapError {
    /// Builds an error with the given message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> SnapError {
        SnapError(m.into())
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapError {}

/// A cheap 64-bit digest of a canonical snapshot serialization —
/// FNV-1a, the same construction `cheri-trace` and the block-cache
/// differ use for memory checksums. Two states are equal iff their
/// canonical serializations are equal, so hash inequality proves
/// divergence and hash equality is (for triage purposes) equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StateHash(pub u64);

impl StateHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Hashes a byte string.
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> StateHash {
        let mut h = StateHash::OFFSET;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(StateHash::PRIME);
        }
        StateHash(h)
    }
}

impl std::fmt::Display for StateHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Run-length encodes a word stream into `(count, value)` pairs.
/// Physical memory and branch-predictor tables are dominated by long
/// runs (zeroes, reset counters), so this keeps multi-megabyte machine
/// images at JSON-able sizes without a compression dependency.
pub fn rle_encode<I: IntoIterator<Item = u64>>(values: I) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for v in values {
        match out.last_mut() {
            Some((count, value)) if *value == v => *count += 1,
            _ => out.push((1, v)),
        }
    }
    out
}

/// Expands `(count, value)` pairs back into the word stream.
#[must_use]
pub fn rle_decode(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::with_capacity(usize::try_from(rle_len(pairs)).unwrap_or(0));
    for &(count, value) in pairs {
        for _ in 0..count {
            out.push(value);
        }
    }
    out
}

/// Total number of words an RLE stream expands to.
#[must_use]
pub fn rle_len(pairs: &[(u64, u64)]) -> u64 {
    pairs.iter().map(|&(c, _)| c).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrip() {
        let data = [0u64, 0, 0, 7, 7, 1, 0, 0, 0, 0, u64::MAX];
        let pairs = rle_encode(data.iter().copied());
        assert_eq!(pairs, vec![(3, 0), (2, 7), (1, 1), (4, 0), (1, u64::MAX)]);
        assert_eq!(rle_decode(&pairs), data);
        assert_eq!(rle_len(&pairs), data.len() as u64);
    }

    #[test]
    fn rle_empty() {
        assert!(rle_encode(std::iter::empty()).is_empty());
        assert_eq!(rle_len(&[]), 0);
        assert!(rle_decode(&[]).is_empty());
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(StateHash::of_bytes(b"").0, 0xcbf2_9ce4_8422_2325);
        assert_eq!(StateHash::of_bytes(b"a").0, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hash_display_is_fixed_width() {
        assert_eq!(StateHash(0x1a).to_string(), "000000000000001a");
    }
}
