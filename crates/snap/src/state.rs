//! The snapshot state tree: plain all-public mirror structs for every
//! layer of the machine. `beri-sim`, `cheri-mem` and `cheri-os` own the
//! conversions to and from their live types; this crate owns the
//! format.
//!
//! Everything is integers, booleans and strings — no floats, no
//! platform-dependent widths — so the canonical JSON form (see
//! [`crate::codec`]) is bit-stable across hosts.

/// One capability value: the architectural tag plus the four big-endian
/// 64-bit words of the 256-bit in-memory image (Figure 1: perms /
/// otype+reserved / base / length). Register-file capabilities are
/// always stored at full 256-bit precision, whatever the configured
/// in-memory format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapState {
    /// Validity tag.
    pub tag: bool,
    /// The four 64-bit words of the 256-bit image, most significant
    /// first.
    pub words: [u64; 4],
}

/// Architectural CPU state: GPRs, HI/LO, PC/next-PC, CP0, the CP2
/// capability register file (32 registers + PCC), and any LL/SC
/// reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuState {
    /// The 32 general-purpose registers.
    pub gpr: [u64; 32],
    /// Multiply/divide HI result register.
    pub hi: u64,
    /// Multiply/divide LO result register.
    pub lo: u64,
    /// Current program counter.
    pub pc: u64,
    /// Next program counter (delay-slot state).
    pub next_pc: u64,
    /// CP0 registers in fixed order: index, entrylo0, entrylo1,
    /// badvaddr, count, entryhi, status, cause, epc, capcause.
    pub cp0: [u64; 10],
    /// CP2 capability registers `c0..c31` followed by PCC (33 total).
    pub caps: Vec<CapState>,
    /// Load-linked reservation address, if one is armed.
    pub ll_reservation: Option<u64>,
}

/// One TLB entry pair. Flag words pack `valid | dirty<<1 | cap_load<<2
/// | cap_store<<3`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbEntryState {
    /// Virtual page number / 2 (the entry maps a pair of pages).
    pub vpn2: u64,
    /// Physical frame of the even page.
    pub pfn0: u64,
    /// Packed flags of the even page.
    pub flags0: u64,
    /// Physical frame of the odd page.
    pub pfn1: u64,
    /// Packed flags of the odd page.
    pub flags1: u64,
    /// Whether the entry is populated.
    pub present: bool,
}

/// The full TLB: every entry plus the replacement cursor and the miss
/// counter (both affect future timing, so both are state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbState {
    /// All entries, in index order.
    pub entries: Vec<TlbEntryState>,
    /// The wired random-replacement cursor.
    pub next_random: u64,
    /// Lifetime miss count.
    pub misses: u64,
}

/// One cache line's tag-array state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLineState {
    /// Line holds data.
    pub valid: bool,
    /// Line is modified relative to the next level.
    pub dirty: bool,
    /// Block address tag.
    pub tag: u64,
    /// LRU timestamp.
    pub lru: u64,
}

/// One cache: every line, the LRU tick, hit/miss/writeback counters and
/// the MRU fast-path cursor. The MRU cursor is architecturally
/// transparent but serialized anyway so that a restored machine is
/// *bit-identical* to the machine it was captured from — the state-hash
/// equality tests depend on that.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheState {
    /// All lines, in set-major order.
    pub lines: Vec<CacheLineState>,
    /// LRU clock.
    pub tick: u64,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
    /// Writeback count.
    pub writebacks: u64,
    /// MRU fast-path block address (`u64::MAX` = none).
    pub mru_block: u64,
    /// MRU fast-path line index.
    pub mru_index: u64,
}

/// The three-cache hierarchy plus DRAM traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyState {
    /// L1 instruction cache.
    pub l1i: CacheState,
    /// L1 data cache.
    pub l1d: CacheState,
    /// Unified L2.
    pub l2: CacheState,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// DRAM access count.
    pub dram_accesses: u64,
}

/// The branch predictor's counter table, run-length encoded (a freshly
/// reset table is a single run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictorState {
    /// `(count, value)` runs over the 2-bit counters in index order.
    pub counters: Vec<(u64, u64)>,
}

/// One tag-cache line. The tag cache is direct-mapped, so position in
/// the vector is the slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagCacheLineState {
    /// Line holds a tag-table block.
    pub valid: bool,
    /// Line is modified relative to the in-DRAM tag table.
    pub dirty: bool,
    /// Which tag-table line this slot caches.
    pub line_index: u64,
}

/// Tagged physical memory: the DRAM image and the tag table as
/// run-length-encoded big-endian 64-bit words, plus the tag-cache
/// contents and its statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemState {
    /// Physical memory size in bytes (always a multiple of 8).
    pub bytes: u64,
    /// Tag granule in bytes (the in-memory capability size).
    pub granule: u64,
    /// `(count, value)` runs over the DRAM image read as big-endian
    /// u64 words.
    pub words: Vec<(u64, u64)>,
    /// `(count, value)` runs over the tag table's u64 words.
    pub tags: Vec<(u64, u64)>,
    /// Tag-cache lines, in slot order (empty when no tag cache is
    /// fitted).
    pub tag_cache: Vec<TagCacheLineState>,
    /// Tag-controller counters in fixed order: lookups, updates, hits,
    /// misses, writebacks.
    pub tag_stats: [u64; 5],
}

/// The machine configuration identity a snapshot was taken under.
/// Restore refuses a mismatched target: almost every field changes
/// either the shape of the state vectors or future timing. The
/// block-cache enable flag and trace sinks are *not* recorded — both
/// are architecturally transparent harness knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfigState {
    /// Physical memory size in bytes.
    pub mem_bytes: u64,
    /// Number of TLB entry pairs.
    pub tlb_entries: u64,
    /// L1 geometry: size, line, ways (both L1s share it).
    pub l1: [u64; 3],
    /// L2 geometry: size, line, ways.
    pub l2: [u64; 3],
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Whether the capability coprocessor is fitted.
    pub cheri_enabled: bool,
    /// Tag-cache capacity in bytes.
    pub tag_cache_bytes: u64,
    /// In-memory capability size in bytes: 32 (256-bit) or 16
    /// (128-bit).
    pub cap_size: u64,
    /// Branch-history-table entries.
    pub bht_entries: u64,
    /// Multiply penalty in cycles.
    pub mul_penalty: u64,
    /// Divide penalty in cycles.
    pub div_penalty: u64,
}

/// Complete simulator state: configuration identity, CPU, TLB, cache
/// hierarchy, branch predictor, the 15 architectural/timing counters of
/// `beri_sim::Stats` (in declaration order), the bare/translated mode
/// flag, and tagged memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    /// Configuration identity.
    pub config: ConfigState,
    /// CPU state.
    pub cpu: CpuState,
    /// TLB state.
    pub tlb: TlbState,
    /// Cache hierarchy state.
    pub hierarchy: HierarchyState,
    /// Branch predictor state.
    pub predictor: PredictorState,
    /// `Stats` counters in declaration order: instructions, cycles,
    /// loads, stores, bytes_loaded, bytes_stored, branches,
    /// mispredicts, cap_instructions, cap_loads, cap_stores, syscalls,
    /// exceptions, tlb_refills, cap_violations.
    pub stats: [u64; 15],
    /// Whether the machine is in bare (virtual = physical) mode.
    pub bare: bool,
    /// Tagged physical memory.
    pub mem: MemState,
}

impl MachineState {
    /// Locates the first architectural difference between two machine
    /// states, in a fixed field order, and describes it as a path-like
    /// string (e.g. `cpu.gpr[7]: 3 != 4` or `mem.words[0x1f40]`). Used
    /// by differential harnesses to turn "states differ" into an
    /// actionable pointer. Returns `None` when the states are equal.
    ///
    /// Timing-only state (caches, predictor, statistics, tag cache) is
    /// compared *after* every architectural field, so the reported
    /// difference is always the most meaningful one.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn first_difference(&self, other: &MachineState) -> Option<String> {
        const CP0_NAMES: [&str; 10] = [
            "index", "entrylo0", "entrylo1", "badvaddr", "count", "entryhi", "status", "cause",
            "epc", "capcause",
        ];
        const STAT_NAMES: [&str; 15] = [
            "instructions",
            "cycles",
            "loads",
            "stores",
            "bytes_loaded",
            "bytes_stored",
            "branches",
            "mispredicts",
            "cap_instructions",
            "cap_loads",
            "cap_stores",
            "syscalls",
            "exceptions",
            "tlb_refills",
            "cap_violations",
        ];
        if self.config != other.config {
            return Some("config".to_string());
        }
        for (i, (a, b)) in self.cpu.gpr.iter().zip(&other.cpu.gpr).enumerate() {
            if a != b {
                return Some(format!("cpu.gpr[{i}]: {a:#x} != {b:#x}"));
            }
        }
        for (name, a, b) in [
            ("hi", self.cpu.hi, other.cpu.hi),
            ("lo", self.cpu.lo, other.cpu.lo),
            ("pc", self.cpu.pc, other.cpu.pc),
            ("next_pc", self.cpu.next_pc, other.cpu.next_pc),
        ] {
            if a != b {
                return Some(format!("cpu.{name}: {a:#x} != {b:#x}"));
            }
        }
        for (i, (a, b)) in self.cpu.cp0.iter().zip(&other.cpu.cp0).enumerate() {
            if a != b {
                return Some(format!("cpu.cp0.{}: {a:#x} != {b:#x}", CP0_NAMES[i]));
            }
        }
        for (i, (a, b)) in self.cpu.caps.iter().zip(&other.cpu.caps).enumerate() {
            if a != b {
                let name = if i == 32 { "pcc".to_string() } else { format!("c{i}") };
                return Some(format!(
                    "cpu.caps.{name}: tag {}/{} words {:x?} != {:x?}",
                    a.tag, b.tag, a.words, b.words
                ));
            }
        }
        if self.cpu.ll_reservation != other.cpu.ll_reservation {
            return Some(format!(
                "cpu.ll_reservation: {:?} != {:?}",
                self.cpu.ll_reservation, other.cpu.ll_reservation
            ));
        }
        for (i, (a, b)) in self.tlb.entries.iter().zip(&other.tlb.entries).enumerate() {
            if a != b {
                return Some(format!("tlb.entries[{i}]"));
            }
        }
        if self.tlb.next_random != other.tlb.next_random {
            return Some(format!(
                "tlb.next_random: {} != {}",
                self.tlb.next_random, other.tlb.next_random
            ));
        }
        if self.bare != other.bare {
            return Some(format!("bare: {} != {}", self.bare, other.bare));
        }
        if let Some((word, a, b)) = first_rle_difference(&self.mem.words, &other.mem.words) {
            return Some(format!(
                "mem.words[{word:#x}] (byte offset {:#x}): {a:#018x} != {b:#018x}",
                word * 8
            ));
        }
        if let Some((word, a, b)) = first_rle_difference(&self.mem.tags, &other.mem.tags) {
            return Some(format!(
                "mem.tags[{word:#x}] (granules {}..): {a:#018x} != {b:#018x}",
                word * 64
            ));
        }
        // Timing-only state last.
        if self.tlb.misses != other.tlb.misses {
            return Some(format!("tlb.misses: {} != {}", self.tlb.misses, other.tlb.misses));
        }
        if self.hierarchy != other.hierarchy {
            return Some("hierarchy".to_string());
        }
        if self.predictor != other.predictor {
            return Some("predictor".to_string());
        }
        for (i, (a, b)) in self.stats.iter().zip(&other.stats).enumerate() {
            if a != b {
                return Some(format!("stats.{}: {a} != {b}", STAT_NAMES[i]));
            }
        }
        if self.mem.tag_cache != other.mem.tag_cache {
            return Some("mem.tag_cache".to_string());
        }
        if self.mem.tag_stats != other.mem.tag_stats {
            return Some(format!(
                "mem.tag_stats: {:?} != {:?}",
                self.mem.tag_stats, other.mem.tag_stats
            ));
        }
        if self == other {
            None
        } else {
            Some("states differ (unlocated)".to_string())
        }
    }
}

/// Walks two `(count, value)` run-length encodings in parallel and
/// returns the first index (in decoded elements) where they disagree,
/// with both values. Unequal total lengths report the first index past
/// the shorter encoding.
fn first_rle_difference(a: &[(u64, u64)], b: &[(u64, u64)]) -> Option<(u64, u64, u64)> {
    let (mut ai, mut bi) = (0usize, 0usize);
    let (mut a_left, mut b_left) = (0u64, 0u64);
    let mut index = 0u64;
    loop {
        if a_left == 0 {
            if ai == a.len() {
                break;
            }
            a_left = a[ai].0;
            ai += 1;
        }
        if b_left == 0 {
            if bi == b.len() {
                break;
            }
            b_left = b[bi].0;
            bi += 1;
        }
        let (av, bv) = (a[ai - 1].1, b[bi - 1].1);
        if av != bv {
            return Some((index, av, bv));
        }
        let run = a_left.min(b_left);
        a_left -= run;
        b_left -= run;
        index += run;
    }
    if a_left > 0 || ai < a.len() {
        return Some((index, a[ai.min(a.len() - 1)].1, 0));
    }
    if b_left > 0 || bi < b.len() {
        return Some((index, 0, b[bi.min(b.len() - 1)].1));
    }
    None
}

/// A saved execution context (domain-crossing stack frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContextState {
    /// The 32 general-purpose registers.
    pub gpr: [u64; 32],
    /// HI register.
    pub hi: u64,
    /// LO register.
    pub lo: u64,
    /// Program counter.
    pub pc: u64,
    /// Next program counter.
    pub next_pc: u64,
    /// The full capability register file (33 entries, as in
    /// [`CpuState::caps`]).
    pub caps: Vec<CapState>,
}

/// One `SYS_PHASE` record: the phase id and the statistics at entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseState {
    /// Phase identifier.
    pub id: u64,
    /// `Stats` counters at the phase boundary, same order as
    /// [`MachineState::stats`].
    pub stats: [u64; 15],
}

/// One registered protection domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainState {
    /// Domain name.
    pub name: String,
    /// Entry point.
    pub entry: u64,
    /// The domain's data capability.
    pub c0: CapState,
    /// The domain's code capability.
    pub pcc: CapState,
    /// Top of the domain's stack.
    pub stack_top: u64,
}

/// `cheri-os` kernel state: process layout identity, handler costs,
/// the page table (sorted), allocation cursors, phase records, console
/// output, and the domain machinery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelState {
    /// Process layout in fixed order: text_base, globals_base,
    /// heap_base, stack_top, user_top.
    pub layout: [u64; 5],
    /// Cycles charged per software TLB refill.
    pub tlb_refill_cycles: u64,
    /// Cycles charged per syscall.
    pub syscall_cycles: u64,
    /// Page table as `(virtual_page, physical_frame)` pairs sorted by
    /// virtual page — the live kernel uses a hash map, which has no
    /// deterministic order.
    pub page_table: Vec<(u64, u64)>,
    /// Next physical frame to allocate.
    pub next_frame: u64,
    /// Program break.
    pub brk: u64,
    /// `exec` count (context switches).
    pub execs: u64,
    /// Domain-call count.
    pub domain_calls: u64,
    /// Domain-return count.
    pub domain_returns: u64,
    /// Phase records, in the order they were issued.
    pub phases: Vec<PhaseState>,
    /// Values printed via `SYS_PRINT`.
    pub prints: Vec<u64>,
    /// Console text.
    pub console: String,
    /// Registered protection domains, in registration order.
    pub domains: Vec<DomainState>,
    /// Saved contexts of in-progress domain calls (innermost last).
    pub domain_stack: Vec<ContextState>,
    /// Ids of the domains those contexts belong to.
    pub domain_id_stack: Vec<u64>,
}

/// A complete snapshot: the machine, plus kernel state when the
/// snapshot was taken through `cheri-os` (a machine used bare — e.g. in
/// unit tests — snapshots with `kernel: None`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulator state.
    pub machine: MachineState,
    /// Kernel state, when captured via `Kernel::snapshot`.
    pub kernel: Option<KernelState>,
}
