//! Protected domain crossing — the Section 11 mechanism, emulated by
//! trapping to the OS.
//!
//! "We are experimenting with several mechanisms for protected domain
//! crossing. Our current prototype traps to the OS to emulate a
//! protected procedure-call instruction, but we intend to provide a
//! hardware (or hardware-assisted) implementation as the software model
//! matures."
//!
//! A *domain* is an entry point plus the capability state it runs with
//! (`C0`/`PCC` restricted to its own compartment, everything else
//! nulled). `SYS_DCALL` performs the protected call: the kernel saves
//! the caller's full context (including its capability registers),
//! installs the callee's, and passes one integer argument; `SYS_DRETURN`
//! restores the caller with the callee's integer result. The two
//! compartments are mutually distrusting: neither holds capabilities for
//! the other's memory, so even a compromised callee cannot read the
//! caller's data — it traps.

use cheri_core::{CapRegFile, Capability, Perms};
use cheri_trace::{emit, TraceEvent};

use crate::context::Context;
use crate::kernel::Kernel;

/// A registered protection domain.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Diagnostic name.
    pub name: &'static str,
    /// Entry PC (inside the domain's region).
    pub entry: u64,
    /// The domain's data/stack compartment, installed as `C0`.
    pub c0: Capability,
    /// The domain's code capability, installed as `PCC`.
    pub pcc: Capability,
    /// Initial stack pointer (top of the compartment, 32-byte aligned).
    pub stack_top: u64,
}

impl Kernel {
    /// Registers a protection domain whose compartment is
    /// `[base, base+len)` with code at `entry` inside it.
    ///
    /// # Errors
    ///
    /// Returns capability-construction failures for degenerate regions.
    pub fn register_domain(
        &mut self,
        name: &'static str,
        entry: u64,
        base: u64,
        len: u64,
    ) -> Result<usize, cheri_core::CapCause> {
        let c0 = Capability::new(
            base,
            len,
            Perms::LOAD | Perms::STORE | Perms::LOAD_CAP | Perms::STORE_CAP,
        )?;
        let pcc = Capability::new(base, len, Perms::EXECUTE | Perms::LOAD)?;
        let spec = DomainSpec { name, entry, c0, pcc, stack_top: (base + len) & !31 };
        self.domains.push(spec);
        Ok(self.domains.len() - 1)
    }

    /// The registered domains.
    #[must_use]
    pub fn domains(&self) -> &[DomainSpec] {
        &self.domains
    }

    /// Services `SYS_DCALL` (`$a0` = domain id, `$a1` = argument):
    /// context-switches into the callee domain. Returns `false` if the
    /// domain id is invalid (the syscall then fails with `u64::MAX`).
    pub(crate) fn domain_call(&mut self, id: u64, arg: u64) -> bool {
        let Some(spec) = self.domains.get(id as usize).cloned() else {
            return false;
        };
        // Resume point: after the syscall.
        self.machine_mut().advance_past_trap();
        let saved = Context::save(&self.machine().cpu);
        self.domain_stack.push(saved);
        // Domain numbering for trace attribution: 0 is the root
        // process, registered domain `i` is `i + 1`.
        let from = self.domain_id_stack.last().copied().unwrap_or(0);
        let to = id + 1;
        self.domain_id_stack.push(to);
        self.domain_calls += 1;
        emit(&self.sink, || TraceEvent::DomainCross { from, to, enter: true });

        let cpu = &mut self.machine_mut().cpu;
        // Mutual distrust: no caller registers leak into the callee.
        cpu.gpr = [0; 32];
        cpu.hi = 0;
        cpu.lo = 0;
        cpu.ll_reservation = None;
        cpu.set_gpr(beri_sim::reg::A0, arg);
        // The callee's stack lives at the top of its own compartment,
        // addressed compartment-relative (C0-offset).
        cpu.set_gpr(beri_sim::reg::SP, (spec.stack_top - spec.c0.base()) & !31);
        cpu.caps = CapRegFile::empty();
        cpu.caps.set_c0(spec.c0);
        cpu.caps.set_pcc(spec.pcc);
        cpu.jump_to(spec.entry);
        true
    }

    /// Services `SYS_DRETURN` (`$a0` = return value): restores the
    /// caller. Returns `false` when there is no caller to return to.
    pub(crate) fn domain_return(&mut self, value: u64) -> bool {
        let Some(saved) = self.domain_stack.pop() else {
            return false;
        };
        let from = self.domain_id_stack.pop().unwrap_or(0);
        let to = self.domain_id_stack.last().copied().unwrap_or(0);
        self.domain_returns += 1;
        emit(&self.sink, || TraceEvent::DomainCross { from, to, enter: false });
        let cpu = &mut self.machine_mut().cpu;
        saved.restore(cpu);
        cpu.set_gpr(beri_sim::reg::V0, value);
        true
    }

    /// Depth of nested protected calls currently outstanding.
    #[must_use]
    pub fn domain_call_depth(&self) -> usize {
        self.domain_stack.len()
    }
}
