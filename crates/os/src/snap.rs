//! Kernel snapshot and restore — the OS half of `cheri-snap`.
//!
//! [`Kernel::snapshot`] pairs the machine's complete state (see
//! `beri_sim::Machine::snapshot`) with everything the host-level kernel
//! itself holds: the page table, frame allocator, heap break, phase /
//! print / console records, registered protection domains, and the
//! saved-context stack of outstanding `SYS_DCALL`s. Restoring the pair
//! resumes a process mid-flight with results and cycle counts
//! bit-identical to a run that never stopped.
//!
//! Harness attachments (trace sinks) and per-run knobs (the runaway
//! instruction budget) are deliberately not part of the snapshot, so the
//! same snapshot hashes identically however the harness was configured.

use std::collections::HashMap;

use beri_sim::{cap_from_state, cap_to_state, Machine, Stats};
use cheri_core::CapRegFile;
use cheri_snap::{ContextState, DomainState, KernelState, PhaseState, SnapError, Snapshot};

use crate::context::Context;
use crate::domains::DomainSpec;
use crate::kernel::{Kernel, KernelConfig, PhaseRecord};
use crate::layout::ProcessLayout;

fn context_to_state(c: &Context) -> ContextState {
    let mut caps = Vec::with_capacity(33);
    for i in 0..32u8 {
        caps.push(cap_to_state(c.caps.get(i)));
    }
    caps.push(cap_to_state(c.caps.pcc()));
    ContextState { gpr: c.gpr, hi: c.hi, lo: c.lo, pc: c.pc, next_pc: c.next_pc, caps }
}

fn context_from_state(s: &ContextState) -> Result<Context, SnapError> {
    if s.caps.len() != 33 {
        return Err(SnapError(format!(
            "saved context needs 33 capability registers (c0..c31 + PCC), snapshot has {}",
            s.caps.len()
        )));
    }
    let mut caps = CapRegFile::empty();
    for i in 0..32u8 {
        caps.set(i, cap_from_state(&s.caps[usize::from(i)]));
    }
    caps.set_pcc(cap_from_state(&s.caps[32]));
    Ok(Context { gpr: s.gpr, hi: s.hi, lo: s.lo, pc: s.pc, next_pc: s.next_pc, caps })
}

fn domain_to_state(d: &DomainSpec) -> DomainState {
    DomainState {
        name: d.name.to_string(),
        entry: d.entry,
        c0: cap_to_state(&d.c0),
        pcc: cap_to_state(&d.pcc),
        stack_top: d.stack_top,
    }
}

fn domain_from_state(s: &DomainState) -> DomainSpec {
    DomainSpec {
        // DomainSpec carries a `&'static str` diagnostic name; restoring
        // leaks one small allocation per domain per restore, bounded by
        // the handful of domains any experiment registers.
        name: Box::leak(s.name.clone().into_boxed_str()),
        entry: s.entry,
        c0: cap_from_state(&s.c0),
        pcc: cap_from_state(&s.pcc),
        stack_top: s.stack_top,
    }
}

fn layout_array(l: &ProcessLayout) -> [u64; 5] {
    [l.text_base, l.globals_base, l.heap_base, l.stack_top, l.user_top]
}

impl Kernel {
    /// Captures the full machine + kernel state as a deterministic,
    /// versioned [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { machine: self.machine.snapshot(), kernel: Some(self.export_state()) }
    }

    fn export_state(&self) -> KernelState {
        let mut page_table: Vec<(u64, u64)> =
            self.page_table.iter().map(|(&v, &f)| (v, f)).collect();
        // HashMap iteration order is nondeterministic; the snapshot is
        // canonical, so sort by virtual page.
        page_table.sort_unstable();
        KernelState {
            layout: layout_array(&self.cfg.layout),
            tlb_refill_cycles: self.cfg.tlb_refill_cycles,
            syscall_cycles: self.cfg.syscall_cycles,
            page_table,
            next_frame: self.next_frame,
            brk: self.brk,
            execs: self.execs,
            domain_calls: self.domain_calls,
            domain_returns: self.domain_returns,
            phases: self
                .phases
                .iter()
                .map(|p| PhaseState { id: p.id, stats: p.stats.to_array() })
                .collect(),
            prints: self.prints.clone(),
            console: self.console.clone(),
            domains: self.domains.iter().map(domain_to_state).collect(),
            domain_stack: self.domain_stack.iter().map(context_to_state).collect(),
            domain_id_stack: self.domain_id_stack.clone(),
        }
    }

    fn import_state(&mut self, s: &KernelState) -> Result<(), SnapError> {
        if layout_array(&self.cfg.layout) != s.layout {
            return Err(SnapError(format!(
                "process layout mismatch: running {:?}, snapshot {:?}",
                layout_array(&self.cfg.layout),
                s.layout
            )));
        }
        if self.cfg.tlb_refill_cycles != s.tlb_refill_cycles
            || self.cfg.syscall_cycles != s.syscall_cycles
        {
            return Err(SnapError(format!(
                "kernel cycle tariffs mismatch: running refill={}/syscall={}, \
                 snapshot refill={}/syscall={}",
                self.cfg.tlb_refill_cycles,
                self.cfg.syscall_cycles,
                s.tlb_refill_cycles,
                s.syscall_cycles
            )));
        }
        self.page_table = s.page_table.iter().copied().collect::<HashMap<u64, u64>>();
        self.next_frame = s.next_frame;
        self.brk = s.brk;
        self.execs = s.execs;
        self.domain_calls = s.domain_calls;
        self.domain_returns = s.domain_returns;
        self.phases = s
            .phases
            .iter()
            .map(|p| PhaseRecord { id: p.id, stats: Stats::from_array(p.stats) })
            .collect();
        self.prints = s.prints.clone();
        self.console = s.console.clone();
        self.domains = s.domains.iter().map(domain_from_state).collect();
        self.domain_stack =
            s.domain_stack.iter().map(context_from_state).collect::<Result<Vec<_>, _>>()?;
        self.domain_id_stack = s.domain_id_stack.clone();
        // Timeline spans are host-side observation state, never part of
        // a snapshot: a restored kernel starts with no open span (the
        // machine restore likewise resets any attached profiler).
        self.open_phase = None;
        Ok(())
    }

    /// Restores a [`Kernel::snapshot`] onto this kernel. The machine
    /// identity and the kernel's layout / cycle tariffs must match; the
    /// attached trace sink and the runaway budget are left as they are
    /// (they are harness knobs, not process state).
    ///
    /// # Errors
    ///
    /// [`SnapError`] naming the first mismatch, or if the snapshot is
    /// machine-only (no kernel section); on error the kernel may be
    /// partially restored and must not be resumed.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapError> {
        let Some(k) = &snap.kernel else {
            return Err(SnapError(
                "snapshot has no kernel section (machine-only snapshot)".to_string(),
            ));
        };
        self.machine.restore(&snap.machine)?;
        self.import_state(k)
    }

    /// Resurrects a kernel from a snapshot alone: rebuilds the machine
    /// and the kernel configuration from the snapshot's identity
    /// sections, then restores the state. `block_cache` and
    /// `max_instructions` are caller decisions (neither is recorded in
    /// the snapshot). This is the `snapreplay` entry point — no help
    /// from the harness that took the snapshot is needed.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the snapshot is machine-only or malformed.
    pub fn resume(
        snap: &Snapshot,
        block_cache: bool,
        max_instructions: u64,
    ) -> Result<Kernel, SnapError> {
        let Some(ks) = &snap.kernel else {
            return Err(SnapError(
                "snapshot has no kernel section (machine-only snapshot)".to_string(),
            ));
        };
        let machine = Machine::from_state(&snap.machine, block_cache)?;
        let cfg = KernelConfig {
            machine: machine.config().clone(),
            layout: ProcessLayout {
                text_base: ks.layout[0],
                globals_base: ks.layout[1],
                heap_base: ks.layout[2],
                stack_top: ks.layout[3],
                user_top: ks.layout[4],
            },
            tlb_refill_cycles: ks.tlb_refill_cycles,
            syscall_cycles: ks.syscall_cycles,
            max_instructions,
        };
        let mut kernel = Kernel::new(machine, cfg);
        kernel.import_state(ks)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use cheri_asm::{reg, Asm};

    use crate::abi;
    use crate::kernel::KernelConfig;
    use beri_sim::MachineConfig;

    fn kernel() -> crate::Kernel {
        crate::boot(KernelConfig {
            machine: MachineConfig { mem_bytes: 8 << 20, ..MachineConfig::default() },
            ..KernelConfig::default()
        })
    }

    fn phase_program(k: &crate::Kernel) -> cheri_asm::Program {
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::A0, 2);
        a.li64(reg::V0, abi::SYS_PHASE as i64);
        a.syscall(0);
        // Some work after the phase so there is something left to run.
        let heap = k.layout().heap_base;
        let top = a.new_label();
        a.li64(reg::T0, heap as i64);
        a.li64(reg::T1, 64);
        a.bind(top).unwrap();
        a.sd(reg::T1, reg::T0, 0);
        a.daddiu(reg::T0, reg::T0, 8);
        a.daddiu(reg::T1, reg::T1, -1);
        a.bgtz(reg::T1, top);
        a.li64(reg::A0, 7);
        a.li64(reg::V0, abi::SYS_EXIT as i64);
        a.syscall(0);
        a.finalize().unwrap()
    }

    #[test]
    fn snapshot_at_phase_then_restore_matches_straight_run() {
        let prog = {
            let k = kernel();
            phase_program(&k)
        };
        // Straight-through run.
        let mut straight = kernel();
        straight.exec(&prog).unwrap();
        let out_straight = straight.run().unwrap();
        let final_straight = straight.snapshot();

        // Interrupted run: stop at phase 2, snapshot, restore onto a
        // freshly booted kernel, finish there.
        let mut first = kernel();
        first.exec(&prog).unwrap();
        assert!(first.run_until_phase(2).unwrap().is_none(), "must stop at the phase");
        let snap = first.snapshot();

        let mut second = kernel();
        second.restore(&snap).unwrap();
        let out_resumed = second.run().unwrap();
        let final_resumed = second.snapshot();

        assert_eq!(out_resumed.exit_value(), Some(7));
        assert_eq!(out_straight.stats, out_resumed.stats);
        assert_eq!(final_straight.state_hash(), final_resumed.state_hash());
    }

    #[test]
    fn run_for_stops_exactly() {
        let prog = {
            let k = kernel();
            phase_program(&k)
        };
        let mut k = kernel();
        k.exec(&prog).unwrap();
        let before = k.machine().stats.instructions;
        assert!(k.run_for(10).unwrap().is_none());
        assert_eq!(k.machine().stats.instructions, before + 10);
    }

    #[test]
    fn resume_rebuilds_kernel_from_snapshot_alone() {
        let prog = {
            let k = kernel();
            phase_program(&k)
        };
        let mut k = kernel();
        k.exec(&prog).unwrap();
        assert!(k.run_until_phase(2).unwrap().is_none());
        let snap = k.snapshot();
        let out_direct = k.run().unwrap();

        let mut resumed = crate::Kernel::resume(&snap, true, 4_000_000_000).unwrap();
        let out_resumed = resumed.run().unwrap();
        assert_eq!(out_direct.stats, out_resumed.stats);
        assert_eq!(out_direct.console, out_resumed.console);
        assert_eq!(k.snapshot().state_hash(), resumed.snapshot().state_hash());
    }

    #[test]
    fn restore_rejects_mismatched_layout() {
        let mut k = kernel();
        let prog = phase_program(&k);
        k.exec(&prog).unwrap();
        let mut snap = k.snapshot();
        let ks = snap.kernel.as_mut().unwrap();
        ks.layout[2] += 0x1000;
        let mut other = kernel();
        assert!(other.restore(&snap).is_err());
    }

    #[test]
    fn machine_only_snapshot_is_rejected_by_kernel_restore() {
        let k = kernel();
        let snap = cheri_snap::Snapshot { machine: k.machine().snapshot(), kernel: None };
        let mut other = kernel();
        let err = other.restore(&snap).unwrap_err();
        assert!(err.0.contains("no kernel section"), "{err}");
    }
}
