//! The user address-space layout.

use beri_sim::tlb::PAGE_SIZE;

/// Where a process's segments live in its virtual address space.
///
/// The compiler (`cheri-cc`) and the kernel share this layout: the
/// compiler hard-codes the globals cell holding the bump-allocator
/// pointer; the kernel initialises that cell to [`ProcessLayout::heap_base`]
/// on exec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessLayout {
    /// Base of the text segment.
    pub text_base: u64,
    /// Base of the globals segment; the first 8 bytes are the heap
    /// bump pointer used by generated allocators.
    pub globals_base: u64,
    /// Base of the heap.
    pub heap_base: u64,
    /// Initial stack pointer (stack grows down).
    pub stack_top: u64,
    /// One past the highest user virtual address; `C0`/`PCC` are
    /// delegated over `[0, user_top)` on exec.
    pub user_top: u64,
}

impl Default for ProcessLayout {
    /// The default layout: 16 MB of user address space with text at
    /// 64 KB, globals at 128 KB, heap at 256 KB, and the stack at the
    /// top.
    fn default() -> ProcessLayout {
        ProcessLayout {
            text_base: 0x1_0000,
            globals_base: 0x2_0000,
            heap_base: 0x4_0000,
            stack_top: 0x100_0000 - PAGE_SIZE,
            user_top: 0x100_0000,
        }
    }
}

impl ProcessLayout {
    /// Address of the heap bump-pointer cell.
    #[must_use]
    pub fn heap_ptr_cell(&self) -> u64 {
        self.globals_base
    }

    /// Validates internal consistency (ordering and page alignment).
    ///
    /// # Panics
    ///
    /// Panics if segments overlap or are misaligned — a configuration
    /// bug, not a runtime condition.
    pub fn validate(&self) {
        assert!(self.text_base < self.globals_base);
        assert!(self.globals_base < self.heap_base);
        assert!(self.heap_base < self.stack_top);
        assert!(self.stack_top < self.user_top);
        for a in [self.text_base, self.globals_base, self.heap_base, self.user_top] {
            assert_eq!(a % PAGE_SIZE, 0, "{a:#x} not page-aligned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_consistent() {
        ProcessLayout::default().validate();
    }

    #[test]
    fn heap_ptr_cell_is_in_globals() {
        let l = ProcessLayout::default();
        assert_eq!(l.heap_ptr_cell(), l.globals_base);
    }

    #[test]
    #[should_panic(expected = "not page-aligned")]
    fn misaligned_layout_rejected() {
        let l = ProcessLayout { text_base: 0x1_0001, ..ProcessLayout::default() };
        l.validate();
    }
}
