//! The host-level kernel: exec, demand paging, syscall dispatch, and the
//! run loop.

use std::collections::HashMap;

use beri_sim::tlb::{TlbFlags, PAGE_SIZE};
use beri_sim::{Exception, Machine, MachineConfig, Stats, StepResult, TrapKind};
use cheri_asm::Program;
use cheri_core::{CapCause, Capability, Perms};
use cheri_mem::MemError;
use cheri_trace::{emit, names, SharedSink, Snapshot, SpanKind, TraceEvent};

use crate::abi;
use crate::layout::ProcessLayout;

/// Kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Machine configuration used by [`crate::boot`].
    pub machine: MachineConfig,
    /// User address-space layout.
    pub layout: ProcessLayout,
    /// Cycles charged for the software TLB-refill handler (a hand-tuned
    /// MIPS refill handler runs in a few tens of cycles).
    pub tlb_refill_cycles: u64,
    /// Cycles charged per syscall (kernel entry + service + exit).
    pub syscall_cycles: u64,
    /// Abort a run after this many instructions (runaway guard).
    pub max_instructions: u64,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            machine: MachineConfig::default(),
            layout: ProcessLayout::default(),
            tlb_refill_cycles: 30,
            syscall_cycles: 120,
            max_instructions: 4_000_000_000,
        }
    }
}

// (re-exported from the crate root)
/// Why a process stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExitReason {
    /// `SYS_EXIT` with this value.
    Exit(u64),
    /// An unhandled CHERI capability violation (the hardware caught a
    /// safety error); the PC of the faulting instruction is included.
    CapFault {
        /// The capability cause register.
        cause: CapCause,
        /// Faulting PC.
        pc: u64,
    },
    /// A software bounds check (CCured-style instrumentation) failed.
    SoftBoundsFault {
        /// PC of the failing check.
        pc: u64,
    },
    /// `BREAK` with an application-defined code.
    Break(u32),
    /// Any other fatal exception (address error, reserved instruction,
    /// integer overflow, wild access outside the user space).
    Fatal(Exception),
}

/// A phase-boundary record: the statistics snapshot taken when the
/// process issued `SYS_PHASE`.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRecord {
    /// Application-chosen phase id.
    pub id: u64,
    /// Machine statistics at the boundary.
    pub stats: Stats,
}

/// The result of running a process to completion.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Why it stopped.
    pub exit: ExitReason,
    /// Final machine statistics.
    pub stats: Stats,
    /// Phase boundaries in program order.
    pub phases: Vec<PhaseRecord>,
    /// Values recorded via `SYS_PRINT`.
    pub prints: Vec<u64>,
    /// Console output from `SYS_PUTCHAR`.
    pub console: String,
    /// Distinct virtual pages faulted in (the process's memory
    /// footprint in pages).
    pub pages_touched: u64,
    /// Tag-controller statistics (capability tag traffic, Section 4.2).
    pub tag_stats: cheri_mem::TagCacheStats,
    /// A unified metrics snapshot: every machine, cache, tag, and OS
    /// counter under its canonical [`cheri_trace::names`] key. The
    /// legacy fields above are thin views onto the same quantities.
    pub metrics: Snapshot,
}

impl RunOutcome {
    /// The exit value, if the process exited normally.
    #[must_use]
    pub fn exit_value(&self) -> Option<u64> {
        match self.exit {
            ExitReason::Exit(v) => Some(v),
            _ => None,
        }
    }
}

/// Kernel-level errors (distinct from guest-visible exceptions).
#[derive(Debug)]
#[non_exhaustive]
pub enum OsError {
    /// The simulator reported a physical-memory fault (kernel bug or
    /// too-small DRAM).
    Sim(MemError),
    /// Physical memory exhausted by demand paging.
    OutOfMemory,
    /// The process exceeded [`KernelConfig::max_instructions`].
    Runaway {
        /// Instructions executed when the guard fired.
        executed: u64,
    },
}

impl core::fmt::Display for OsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OsError::Sim(e) => write!(f, "simulator fault: {e}"),
            OsError::OutOfMemory => write!(f, "out of physical memory"),
            OsError::Runaway { executed } => {
                write!(f, "process exceeded instruction budget ({executed} executed)")
            }
        }
    }
}

impl std::error::Error for OsError {}

/// When [`Kernel::run_inner`] hands control back to the caller before
/// the process exits.
#[derive(Clone, Copy, Debug)]
enum StopWhen {
    /// Run to completion.
    Never,
    /// Stop once the process issues `SYS_PHASE` with this id.
    PhaseId(u64),
    /// Stop after this many retired instructions.
    Steps(u64),
}

impl From<MemError> for OsError {
    fn from(e: MemError) -> OsError {
        OsError::Sim(e)
    }
}

/// The kernel.
pub struct Kernel {
    pub(crate) machine: Machine,
    pub(crate) cfg: KernelConfig,
    pub(crate) page_table: HashMap<u64, u64>,
    pub(crate) next_frame: u64,
    pub(crate) phases: Vec<PhaseRecord>,
    pub(crate) prints: Vec<u64>,
    pub(crate) console: String,
    pub(crate) brk: u64,
    pub(crate) domains: Vec<crate::domains::DomainSpec>,
    pub(crate) domain_stack: Vec<crate::context::Context>,
    // Domain ids mirroring `domain_stack` (for DomainCross attribution).
    pub(crate) domain_id_stack: Vec<u64>,
    pub(crate) execs: u64,
    pub(crate) domain_calls: u64,
    pub(crate) domain_returns: u64,
    pub(crate) sink: Option<SharedSink>,
    // The phase span currently open on the timeline (trace SpanBegin
    // emitted, SpanEnd pending). Host-side observation state: reset on
    // exec and on snapshot restore, never serialized.
    pub(crate) open_phase: Option<u64>,
}

impl Kernel {
    /// Wraps a machine (translation should already be enabled; see
    /// [`crate::boot`]).
    #[must_use]
    pub fn new(machine: Machine, cfg: KernelConfig) -> Kernel {
        cfg.layout.validate();
        Kernel {
            machine,
            cfg,
            page_table: HashMap::new(),
            next_frame: 16, // leave the low 64 KB of DRAM to the "firmware"
            phases: Vec::new(),
            prints: Vec::new(),
            console: String::new(),
            brk: 0,
            domains: Vec::new(),
            domain_stack: Vec::new(),
            domain_id_stack: Vec::new(),
            execs: 0,
            domain_calls: 0,
            domain_returns: 0,
            sink: None,
            open_phase: None,
        }
    }

    /// Attaches (or with `None`, detaches) a trace sink to the kernel
    /// and the whole machine beneath it: the pipeline, the cache
    /// hierarchy, and the tag controller all share the handle, so one
    /// call instruments every layer.
    pub fn set_trace_sink(&mut self, sink: Option<SharedSink>) {
        let sink = cheri_trace::active(sink);
        self.machine.set_trace_sink(sink.clone());
        self.sink = sink;
    }

    /// The kernel's trace sink handle, if one is attached.
    #[must_use]
    pub fn trace_sink(&self) -> Option<SharedSink> {
        self.sink.clone()
    }

    /// The underlying machine (e.g. for statistics or capability
    /// inspection).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (tests and examples that want to
    /// poke registers between runs).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The process layout in force.
    #[must_use]
    pub fn layout(&self) -> ProcessLayout {
        self.cfg.layout
    }

    fn alloc_frame(&mut self) -> Result<u64, OsError> {
        let frames = self.machine.mem.size() / PAGE_SIZE;
        if self.next_frame >= frames {
            return Err(OsError::OutOfMemory);
        }
        let f = self.next_frame;
        self.next_frame += 1;
        Ok(f)
    }

    /// Maps the page containing `vaddr`, allocating a zeroed frame on
    /// first touch, and installs it in the TLB.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] when DRAM is exhausted.
    pub fn map_page(&mut self, vaddr: u64, flags: TlbFlags) -> Result<u64, OsError> {
        let vpage = vaddr / PAGE_SIZE;
        let frame = match self.page_table.get(&vpage) {
            Some(f) => *f,
            None => {
                let f = self.alloc_frame()?;
                self.page_table.insert(vpage, f);
                f
            }
        };
        self.machine.tlb_install(vpage * PAGE_SIZE, frame * PAGE_SIZE, flags);
        Ok(frame * PAGE_SIZE)
    }

    /// Loads `program`, delegates the address space, and prepares the
    /// first thread — the `execve()` path of Section 4.3.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn exec(&mut self, program: &Program) -> Result<(), OsError> {
        let layout = self.cfg.layout;
        // Fresh address space.
        self.page_table.clear();
        self.machine.tlb_flush();
        self.machine.hierarchy.flush();
        self.phases.clear();
        self.prints.clear();
        self.console.clear();
        self.brk = layout.heap_base;
        self.domains.clear();
        self.domain_stack.clear();
        self.domain_id_stack.clear();
        self.execs += 1;
        let pid = self.execs;
        emit(&self.sink, || TraceEvent::ContextSwitch { pid });
        // The previous address space's spans die with it.
        self.open_phase = None;
        let ts = self.machine.stats.cycles;
        if let Some(p) = self.machine.profiler_mut() {
            p.on_exec(pid, ts);
        }

        // Copy text through the page tables. These writes bypass the
        // machine's store path, so drop any predecoded blocks (frames
        // may be recycled from the previous address space).
        for (i, w) in program.words.iter().enumerate() {
            let vaddr = program.base + 4 * i as u64;
            let pbase = self.map_page(vaddr, TlbFlags::rw())?;
            self.machine.mem.write_u32(pbase + (vaddr & (PAGE_SIZE - 1)), *w)?;
        }
        self.machine.invalidate_block_cache();
        // Initialise the heap bump pointer used by generated allocators.
        let cell = layout.heap_ptr_cell();
        let pbase = self.map_page(cell, TlbFlags::rw())?;
        self.machine.mem.write_u64(pbase + (cell & (PAGE_SIZE - 1)), layout.heap_base)?;

        // Register state: stack pointer (32-byte aligned so capability
        // spills are representable), entry PC.
        let cpu = &mut self.machine.cpu;
        cpu.gpr = [0; 32];
        cpu.hi = 0;
        cpu.lo = 0;
        cpu.ll_reservation = None;
        cpu.set_gpr(beri_sim::reg::SP, layout.stack_top & !31);
        cpu.jump_to(program.entry);

        // Capability delegation: C0 and PCC span the user space; every
        // other capability register is nulled so the process's initial
        // authority is exactly its address space.
        let user =
            Capability::new(0, layout.user_top, Perms::ALL).expect("user_top is far below 2^64");
        cpu.caps = cheri_core::CapRegFile::empty();
        cpu.caps.set_c0(user);
        cpu.caps.set_pcc(user);
        Ok(())
    }

    fn handle_refill(&mut self, vaddr: u64) -> Result<Option<ExitReason>, OsError> {
        if vaddr >= self.cfg.layout.user_top {
            // Wild access outside the delegated space: fatal. (Normally
            // unreachable: C0 bounds catch it first.)
            return Ok(Some(ExitReason::Fatal(Exception {
                kind: TrapKind::TlbRefill { vaddr, write: false },
                pc: self.machine.cpu.pc,
            })));
        }
        self.map_page(vaddr, TlbFlags::rw())?;
        self.machine.charge_cycles(self.cfg.tlb_refill_cycles);
        Ok(None)
    }

    fn handle_syscall(&mut self) -> Option<ExitReason> {
        self.machine.charge_cycles(self.cfg.syscall_cycles);
        let num = self.machine.cpu.gpr[usize::from(beri_sim::reg::V0)];
        let a0 = self.machine.cpu.gpr[usize::from(beri_sim::reg::A0)];
        let tariff = self.cfg.syscall_cycles;
        // Timeline entries place the syscall at its pre-charge cycle
        // count with the tariff as its duration. (The tariff is charged
        // *before* dispatch because SYS_GETCOUNT's return value
        // includes it — that ordering is guest-visible and must not
        // change.)
        let ts = self.machine.stats.cycles - tariff;
        emit(&self.sink, || TraceEvent::Syscall { nr: num, cycles: tariff });
        if let Some(p) = self.machine.profiler_mut() {
            p.on_syscall(num, ts, tariff);
        }
        let result = match num {
            abi::SYS_EXIT => {
                self.close_spans(ts);
                return Some(ExitReason::Exit(a0));
            }
            abi::SYS_PHASE => {
                self.phases.push(PhaseRecord { id: a0, stats: self.machine.stats });
                if let Some(prev) = self.open_phase.take() {
                    emit(&self.sink, || TraceEvent::SpanEnd {
                        kind: SpanKind::Phase,
                        id: prev,
                        cycles: ts,
                    });
                }
                emit(&self.sink, || TraceEvent::SpanBegin {
                    kind: SpanKind::Phase,
                    id: a0,
                    cycles: ts,
                });
                self.open_phase = Some(a0);
                if let Some(p) = self.machine.profiler_mut() {
                    p.on_phase(a0, ts);
                }
                None
            }
            abi::SYS_PRINT => {
                self.prints.push(a0);
                None
            }
            abi::SYS_PUTCHAR => {
                self.console.push(a0 as u8 as char);
                None
            }
            abi::SYS_BRK => {
                if a0 > self.brk && a0 < self.cfg.layout.stack_top {
                    self.brk = a0;
                }
                Some(self.brk)
            }
            abi::SYS_GETCOUNT => Some(self.machine.stats.cycles),
            abi::SYS_DCALL => {
                let a1 = self.machine.cpu.gpr[usize::from(beri_sim::reg::A1)];
                if self.domain_call(a0, a1) {
                    emit(&self.sink, || TraceEvent::SpanBegin {
                        kind: SpanKind::Domain,
                        id: a0,
                        cycles: ts,
                    });
                    if let Some(p) = self.machine.profiler_mut() {
                        p.on_domain_call(a0, ts);
                    }
                    // The callee is installed; do not advance (already
                    // positioned at the entry point).
                    return None;
                }
                Some(u64::MAX)
            }
            abi::SYS_DRETURN => {
                let from = self.domain_id_stack.last().copied();
                if self.domain_return(a0) {
                    if let Some(id) = from {
                        emit(&self.sink, || TraceEvent::SpanEnd {
                            kind: SpanKind::Domain,
                            id,
                            cycles: ts,
                        });
                    }
                    if let Some(p) = self.machine.profiler_mut() {
                        p.on_domain_return(ts);
                    }
                    return None; // caller context restored, v0 set
                }
                // A return with no caller ends the process.
                self.close_spans(ts);
                return Some(ExitReason::Exit(a0));
            }
            unknown => {
                // Unknown service: fail the call with all-ones, as a
                // real kernel returns ENOSYS.
                let _ = unknown;
                Some(u64::MAX)
            }
        };
        if let Some(v) = result {
            self.machine.cpu.set_gpr(beri_sim::reg::V0, v);
        }
        self.machine.advance_past_trap();
        None
    }

    /// Closes every open timeline span at cycle `ts` — the process is
    /// exiting, and a balanced timeline renders correctly in Perfetto.
    fn close_spans(&mut self, ts: u64) {
        if let Some(prev) = self.open_phase.take() {
            emit(&self.sink, || TraceEvent::SpanEnd {
                kind: SpanKind::Phase,
                id: prev,
                cycles: ts,
            });
        }
        for &id in self.domain_id_stack.iter().rev() {
            emit(&self.sink, || TraceEvent::SpanEnd { kind: SpanKind::Domain, id, cycles: ts });
        }
        if let Some(p) = self.machine.profiler_mut() {
            p.on_exit(ts);
        }
    }

    /// Runs the current process to completion.
    ///
    /// # Errors
    ///
    /// [`OsError::Runaway`] if the instruction budget is exhausted,
    /// [`OsError::OutOfMemory`] if paging fails, or [`OsError::Sim`] for
    /// simulator-level faults.
    pub fn run(&mut self) -> Result<RunOutcome, OsError> {
        let out = self.run_inner(StopWhen::Never)?;
        Ok(out.expect("a run with no stop condition always ends with an outcome"))
    }

    /// Runs until the process issues `SYS_PHASE` with `phase_id`
    /// (returning `Ok(None)` with the machine positioned just *after*
    /// the syscall — the natural snapshot point for warm-started
    /// sweeps), or to completion (`Ok(Some(outcome))`) if the phase
    /// never arrives.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run`]. The instruction budget applies per call.
    pub fn run_until_phase(&mut self, phase_id: u64) -> Result<Option<RunOutcome>, OsError> {
        self.run_inner(StopWhen::PhaseId(phase_id))
    }

    /// Runs for at most `steps` retired instructions, returning
    /// `Ok(None)` if the budget elapsed with the process still live or
    /// `Ok(Some(outcome))` if it finished first. Stopping is exact —
    /// precisely `steps` instructions retire — which is what
    /// `snapreplay`'s divergence bisection depends on.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run`]. The instruction budget applies per call.
    pub fn run_for(&mut self, steps: u64) -> Result<Option<RunOutcome>, OsError> {
        self.run_inner(StopWhen::Steps(steps))
    }

    fn run_inner(&mut self, stop: StopWhen) -> Result<Option<RunOutcome>, OsError> {
        let start_instructions = self.machine.stats.instructions;
        let mut phase_mark = self.phases.len();
        let exit = loop {
            let executed = self.machine.stats.instructions - start_instructions;
            if executed >= self.cfg.max_instructions {
                return Err(OsError::Runaway { executed });
            }
            // Hand the machine the whole remaining budget: `run` takes
            // the predecoded fast path where possible and returns on
            // any kernel-visible event (or with `Continue` once the
            // budget is spent, which the loop head converts to
            // `Runaway` — the same boundary the per-step loop had).
            let mut budget = self.cfg.max_instructions - executed;
            if let StopWhen::Steps(n) = stop {
                if executed >= n {
                    return Ok(None);
                }
                budget = budget.min(n - executed);
            }
            match self.machine.run(budget).map_err(OsError::Sim)? {
                StepResult::Continue => {}
                StepResult::Syscall => {
                    if let Some(reason) = self.handle_syscall() {
                        break reason;
                    }
                    if let StopWhen::PhaseId(id) = stop {
                        if self.phases.len() > phase_mark {
                            phase_mark = self.phases.len();
                            if self.phases[phase_mark - 1].id == id {
                                return Ok(None);
                            }
                        }
                    }
                }
                StepResult::Break(code) => {
                    break if code == crate::SOFT_BOUNDS_BREAK_CODE {
                        ExitReason::SoftBoundsFault { pc: self.machine.cpu.pc }
                    } else {
                        ExitReason::Break(code)
                    };
                }
                #[allow(unreachable_patterns)]
                StepResult::Trap(e) => match e.kind {
                    TrapKind::TlbRefill { vaddr, .. } => {
                        // Emit only for true refill misses — TlbInvalid
                        // and TlbModified are serviced by the same
                        // handler but are not counted as refills by
                        // `Stats::tlb_refills`, and the event stream
                        // must aggregate to the same totals.
                        let tariff = self.cfg.tlb_refill_cycles;
                        emit(&self.sink, || TraceEvent::TlbRefill { vaddr, cycles: tariff });
                        if let Some(reason) = self.handle_refill(vaddr)? {
                            break reason;
                        }
                    }
                    TrapKind::TlbInvalid { vaddr, .. } => {
                        if let Some(reason) = self.handle_refill(vaddr)? {
                            break reason;
                        }
                    }
                    TrapKind::TlbModified { vaddr } => {
                        // All anonymous pages are writable; re-map dirty.
                        if let Some(reason) = self.handle_refill(vaddr)? {
                            break reason;
                        }
                    }
                    TrapKind::CapViolation(cause) => {
                        break ExitReason::CapFault { cause, pc: e.pc };
                    }
                    _ => break ExitReason::Fatal(e),
                },
                // StepResult is non-exhaustive; treat future variants as
                // fatal rather than silently continuing.
                _ => {
                    break ExitReason::Fatal(Exception {
                        kind: TrapKind::ReservedInstruction { word: 0 },
                        pc: self.machine.cpu.pc,
                    });
                }
            }
        };
        Ok(Some(RunOutcome {
            exit,
            stats: self.machine.stats,
            phases: self.phases.clone(),
            prints: self.prints.clone(),
            console: self.console.clone(),
            pages_touched: self.page_table.len() as u64,
            tag_stats: self.machine.mem.tag_stats(),
            metrics: self.metrics(),
        }))
    }

    /// A unified snapshot of every counter the kernel and the machine
    /// beneath it maintain, keyed by the canonical
    /// [`cheri_trace::names`] constants. This is the same data an
    /// attached [`cheri_trace::AggregateSink`] accumulates from the
    /// event stream, read directly from the legacy per-struct counters.
    #[must_use]
    pub fn metrics(&self) -> Snapshot {
        let mut snap = self.machine.metrics();
        snap.set_counter(names::CONTEXT_SWITCHES, self.execs);
        snap.set_counter(names::DOMAIN_CALLS, self.domain_calls);
        snap.set_counter(names::DOMAIN_RETURNS, self.domain_returns);
        snap.set_counter("os.pages_touched", self.page_table.len() as u64);
        snap
    }

    /// Loads an additional code image into the current address space
    /// (e.g. a protected domain's compartment) without resetting it.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn load_image(&mut self, program: &Program) -> Result<(), OsError> {
        for (i, w) in program.words.iter().enumerate() {
            let vaddr = program.base + 4 * i as u64;
            let pbase = self.map_page(vaddr, TlbFlags::rw())?;
            self.machine.mem.write_u32(pbase + (vaddr & (PAGE_SIZE - 1)), *w)?;
        }
        // Direct `mem` writes are invisible to the block cache.
        self.machine.invalidate_block_cache();
        Ok(())
    }

    /// Kernel-side address translation for the GC scan (no TLB, no
    /// faults, no statistics).
    #[must_use]
    pub(crate) fn translate_for_gc(&self, vaddr: u64) -> Option<u64> {
        let frame = self.page_table.get(&(vaddr / PAGE_SIZE))?;
        Some(frame * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1)))
    }

    /// Reads the physical tag bit directly from the tag table (no cache
    /// modelling).
    #[must_use]
    pub(crate) fn tag_at(&self, paddr: u64) -> bool {
        self.machine.mem.tag_controller().table().get(paddr)
    }

    /// Reads a capability image without touching the tag cache.
    pub(crate) fn read_cap_raw_for_gc(
        &self,
        paddr: u64,
    ) -> Result<cheri_core::Capability, MemError> {
        let mut bytes = [0u8; cheri_core::CAP_SIZE_BYTES];
        self.machine.mem.read_bytes(paddr, &mut bytes)?;
        Ok(cheri_core::Capability::from_bytes(&bytes, self.tag_at(paddr)))
    }

    /// Reads a 64-bit word from the process's virtual address space
    /// through the kernel's page tables (a debugger-style peek).
    ///
    /// Returns `None` if the page was never touched.
    #[must_use]
    pub fn read_user_u64(&self, vaddr: u64) -> Option<u64> {
        let frame = self.page_table.get(&(vaddr / PAGE_SIZE))?;
        self.machine.mem.read_u64(frame * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1))).ok()
    }

    /// Bytes of heap the current process has bump-allocated (the
    /// generated allocator's pointer cell minus the heap base).
    #[must_use]
    pub fn heap_used(&self) -> Option<u64> {
        let cell = self.read_user_u64(self.cfg.layout.heap_ptr_cell())?;
        Some(cell.saturating_sub(self.cfg.layout.heap_base))
    }

    /// Execs `program` and runs it to completion (the common harness
    /// path).
    ///
    /// # Errors
    ///
    /// As [`Kernel::exec`] and [`Kernel::run`].
    pub fn exec_and_run(&mut self, program: &Program) -> Result<RunOutcome, OsError> {
        self.exec(program)?;
        self.run()
    }
}

impl core::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Kernel(pages={}, brk={:#x}, phases={})",
            self.page_table.len(),
            self.brk,
            self.phases.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi;
    use cheri_asm::{reg, Asm};

    fn kernel() -> Kernel {
        crate::boot(KernelConfig {
            machine: MachineConfig { mem_bytes: 8 << 20, ..MachineConfig::default() },
            ..KernelConfig::default()
        })
    }

    fn exit_with(a: &mut Asm, reg_holding_value: u8) {
        a.move_(reg::A0, reg_holding_value);
        a.li64(reg::V0, abi::SYS_EXIT as i64);
        a.syscall(0);
    }

    #[test]
    fn exec_and_run_simple_exit() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::T0, 42);
        exit_with(&mut a, reg::T0);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(42));
        assert!(out.stats.instructions > 0);
        assert!(out.pages_touched >= 2, "text + globals pages at least");
    }

    #[test]
    fn demand_paging_grows_footprint() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        // Touch 20 pages of heap.
        let heap = k.layout().heap_base;
        let top = a.new_label();
        a.li64(reg::T0, heap as i64);
        a.li64(reg::T1, 20);
        a.bind(top).unwrap();
        a.sd(reg::ZERO, reg::T0, 0);
        a.daddiu(reg::T0, reg::T0, 4096i16);
        a.daddiu(reg::T1, reg::T1, -1);
        a.bgtz(reg::T1, top);
        exit_with(&mut a, reg::ZERO);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(0));
        assert!(out.pages_touched >= 20, "got {}", out.pages_touched);
        // Each touched page faults once: even pages as refills, odd pages
        // as invalid-hits on the shared paired entry.
        assert!(out.stats.tlb_refills >= 10);
        assert!(out.stats.exceptions >= 20);
    }

    #[test]
    fn stack_is_demand_paged_and_writable() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.daddiu(reg::SP, reg::SP, -64);
        a.sd(reg::RA, reg::SP, 0);
        a.ld(reg::T0, reg::SP, 0);
        exit_with(&mut a, reg::T0);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(0));
    }

    #[test]
    fn phase_markers_snapshot_stats() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::A0, 1);
        a.li64(reg::V0, abi::SYS_PHASE as i64);
        a.syscall(0);
        for _ in 0..50 {
            a.nop();
        }
        a.li64(reg::A0, 2);
        a.li64(reg::V0, abi::SYS_PHASE as i64);
        a.syscall(0);
        exit_with(&mut a, reg::ZERO);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.phases.len(), 2);
        assert_eq!(out.phases[0].id, 1);
        assert_eq!(out.phases[1].id, 2);
        assert!(
            out.phases[1].stats.instructions >= out.phases[0].stats.instructions + 50,
            "second phase must come after the 50 nops"
        );
    }

    #[test]
    fn prints_and_console_are_captured() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::A0, 777);
        a.li64(reg::V0, abi::SYS_PRINT as i64);
        a.syscall(0);
        a.li64(reg::A0, i64::from(b'h'));
        a.li64(reg::V0, abi::SYS_PUTCHAR as i64);
        a.syscall(0);
        exit_with(&mut a, reg::ZERO);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.prints, vec![777]);
        assert_eq!(out.console, "h");
    }

    #[test]
    fn capability_fault_terminates_process() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        // Bound C1 to 16 bytes of heap, then read past it.
        a.li64(reg::T0, k.layout().heap_base as i64);
        a.cincbase(1, 0, reg::T0);
        a.li64(reg::T1, 16);
        a.csetlen(1, 1, reg::T1);
        a.li64(reg::T2, 16);
        a.cld(reg::T3, reg::T2, 0, 1);
        exit_with(&mut a, reg::ZERO);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        match out.exit {
            ExitReason::CapFault { cause, .. } => {
                assert_eq!(cause.code(), cheri_core::CapExcCode::LengthViolation);
                assert_eq!(cause.reg(), 1);
            }
            other => panic!("expected CapFault, got {other:?}"),
        }
    }

    #[test]
    fn soft_bounds_break_is_reported() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.break_(crate::SOFT_BOUNDS_BREAK_CODE);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert!(matches!(out.exit, ExitReason::SoftBoundsFault { .. }));
    }

    #[test]
    fn process_starts_with_only_user_space_authority() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.cgetlen(reg::T0, 0);
        exit_with(&mut a, reg::T0);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(k.layout().user_top));
        // All non-C0 registers were nulled by exec.
        assert!(!k.machine().cpu.caps.get(5).tag());
    }

    #[test]
    fn wild_jump_outside_pcc_faults() {
        let mut k = kernel();
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::T0, (k.layout().user_top + 0x1000) as i64);
        a.jr(reg::T0);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert!(
            matches!(out.exit, ExitReason::CapFault { .. }),
            "PCC must catch the wild jump: {:?}",
            out.exit
        );
    }

    #[test]
    fn runaway_guard_fires() {
        let mut k = crate::boot(KernelConfig {
            machine: MachineConfig { mem_bytes: 8 << 20, ..MachineConfig::default() },
            max_instructions: 1000,
            ..KernelConfig::default()
        });
        let mut a = Asm::new(k.layout().text_base);
        let spin = a.new_label();
        a.bind(spin).unwrap();
        a.b(spin);
        match k.exec_and_run(&a.finalize().unwrap()) {
            Err(OsError::Runaway { .. }) => {}
            other => panic!("expected runaway, got {other:?}"),
        }
    }

    #[test]
    fn heap_ptr_cell_initialised_on_exec() {
        let mut k = kernel();
        let cell = k.layout().heap_ptr_cell();
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::T0, cell as i64);
        a.ld(reg::T1, reg::T0, 0);
        exit_with(&mut a, reg::T1);
        let out = k.exec_and_run(&a.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(k.layout().heap_base));
    }

    #[test]
    fn exec_twice_gives_fresh_address_space() {
        let mut k = kernel();
        // First program dirties the heap.
        let mut a = Asm::new(k.layout().text_base);
        a.li64(reg::T0, k.layout().heap_base as i64);
        a.li64(reg::T1, 123);
        a.sd(reg::T1, reg::T0, 0);
        exit_with(&mut a, reg::ZERO);
        k.exec_and_run(&a.finalize().unwrap()).unwrap();
        // Second program must see zeroed heap (fresh frames).
        let mut b = Asm::new(k.layout().text_base);
        b.li64(reg::T0, k.layout().heap_base as i64);
        b.ld(reg::T1, reg::T0, 0);
        exit_with(&mut b, reg::T1);
        let out = k.exec_and_run(&b.finalize().unwrap()).unwrap();
        assert_eq!(out.exit_value(), Some(0));
    }
}
