//! Thread/process contexts.
//!
//! "The kernel saves and restores per-thread capability-register state on
//! context switches" (Section 4.3). A [`Context`] is exactly that state:
//! the integer register file plus the 32 capability registers and `PCC`.

use beri_sim::Cpu;
use cheri_core::CapRegFile;

/// Saved per-thread register state.
#[derive(Clone, Debug)]
pub struct Context {
    /// General-purpose registers.
    pub gpr: [u64; 32],
    /// Multiply/divide HI.
    pub hi: u64,
    /// Multiply/divide LO.
    pub lo: u64,
    /// Program counter.
    pub pc: u64,
    /// Next PC (captures a pending branch across a switch).
    pub next_pc: u64,
    /// The full capability register file, including `PCC`.
    pub caps: CapRegFile,
}

impl Context {
    /// Captures the CPU's current register state.
    #[must_use]
    pub fn save(cpu: &Cpu) -> Context {
        Context {
            gpr: cpu.gpr,
            hi: cpu.hi,
            lo: cpu.lo,
            pc: cpu.pc,
            next_pc: cpu.next_pc,
            caps: cpu.caps.clone(),
        }
    }

    /// Restores this context onto the CPU.
    pub fn restore(&self, cpu: &mut Cpu) {
        cpu.gpr = self.gpr;
        cpu.hi = self.hi;
        cpu.lo = self.lo;
        cpu.pc = self.pc;
        cpu.next_pc = self.next_pc;
        cpu.caps = self.caps.clone();
        cpu.ll_reservation = None; // a switch always breaks LL/SC
    }

    /// Size of the state a context switch moves, in bytes — the
    /// context-switch overhead CHERI adds is dominated by the 32×256-bit
    /// capability file (Section 4.1 notes a smaller file "would reduce
    /// context-switch overhead").
    #[must_use]
    pub fn capability_state_bytes() -> usize {
        33 * cheri_core::CAP_SIZE_BYTES // 32 registers + PCC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::{Capability, Perms};

    #[test]
    fn save_restore_roundtrip() {
        let mut cpu = Cpu::new();
        cpu.set_gpr(5, 1234);
        cpu.hi = 7;
        cpu.jump_to(0x4000);
        cpu.caps.set(3, Capability::new(0x100, 0x10, Perms::LOAD).unwrap());
        let ctx = Context::save(&cpu);

        let mut other = Cpu::new();
        other.set_gpr(5, 9);
        ctx.restore(&mut other);
        assert_eq!(other.gpr[5], 1234);
        assert_eq!(other.hi, 7);
        assert_eq!(other.pc, 0x4000);
        assert_eq!(other.caps.get(3).base(), 0x100);
    }

    #[test]
    fn restore_breaks_ll_reservation() {
        let mut cpu = Cpu::new();
        cpu.ll_reservation = Some(0x2000);
        let ctx = Context::save(&cpu);
        ctx.restore(&mut cpu);
        assert_eq!(cpu.ll_reservation, None);
    }

    #[test]
    fn capability_state_is_just_over_1kb() {
        assert_eq!(Context::capability_state_bytes(), 1056);
    }
}
