//! Tag-driven capability tracing — the Section 11 temporal-safety
//! sketch.
//!
//! "The presence of tagged memory also provides opportunities to enforce
//! temporal safety. Tags allow us to identify all references, so we can
//! provide accurate garbage collection to low-level languages such as C.
//! Possibilities include a non-reuse allocator (to eliminate most
//! dangling pointer errors) that periodically runs a tracing pass to
//! identify reusable address space."
//!
//! [`Kernel::gc_trace`] implements that tracing pass: starting from the
//! capability register file, it follows every *tagged* granule inside
//! every reachable region — tags make the scan precise, with no
//! conservative pointer guessing — and reports which part of the heap is
//! still referenced. A non-reuse (bump) allocator, which is exactly what
//! `cheri-cc` programs use, can then recycle the unreachable remainder.

use std::collections::HashSet;

use beri_sim::tlb::PAGE_SIZE;
use cheri_core::{Capability, TAG_GRANULE};

use crate::kernel::Kernel;

/// The result of a capability tracing pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Distinct tagged capabilities encountered (registers + memory).
    pub live_capabilities: usize,
    /// Reachable regions, as merged, sorted `[base, end)` virtual
    /// intervals.
    pub reachable: Vec<(u64, u64)>,
    /// Heap bytes between the heap base and the allocator's bump pointer
    /// that no reachable capability covers — the space a non-reuse
    /// allocator could recycle.
    pub reclaimable_heap_bytes: u64,
}

impl GcReport {
    /// Total bytes covered by reachable regions.
    #[must_use]
    pub fn reachable_bytes(&self) -> u64 {
        self.reachable.iter().map(|(b, e)| e - b).sum()
    }
}

fn merge(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (b, e) in spans {
        match out.last_mut() {
            Some(last) if b <= last.1 => last.1 = last.1.max(e),
            _ => out.push((b, e)),
        }
    }
    out
}

impl Kernel {
    /// Runs a precise capability tracing pass over the current process.
    ///
    /// Roots are the 32 capability registers plus `PCC`; the scan
    /// follows tagged granules through memory (via the kernel's page
    /// tables and the physical tag table, without disturbing the tag
    /// cache statistics). Untagged data — even if it is bit-identical
    /// to a capability — is never followed: that is the precision the
    /// paper's tags buy.
    #[must_use]
    pub fn gc_trace(&mut self) -> GcReport {
        let mut worklist: Vec<Capability> = Vec::new();
        let cpu = &self.machine().cpu;
        for c in cpu.caps.iter() {
            if c.tag() {
                worklist.push(*c);
            }
        }
        if cpu.caps.pcc().tag() {
            worklist.push(*cpu.caps.pcc());
        }

        let mut seen: HashSet<(u64, u64, u32)> = HashSet::new();
        let mut live = 0usize;
        let mut spans = Vec::new();
        while let Some(cap) = worklist.pop() {
            let key = (cap.base(), cap.length(), cap.perms().bits());
            if !seen.insert(key) {
                continue;
            }
            live += 1;
            let end = cap.top().min(u128::from(u64::MAX)) as u64;
            spans.push((cap.base(), end));
            // Scan the region's mapped granules for further tagged
            // capabilities.
            let first = cap.base() / TAG_GRANULE * TAG_GRANULE;
            let mut g = first;
            while g < end {
                if let Some(paddr) = self.translate_for_gc(g) {
                    if self.tag_at(paddr) {
                        if let Ok(inner) = self.read_cap_raw_for_gc(paddr) {
                            if inner.tag() {
                                worklist.push(inner);
                            }
                        }
                    }
                    g += TAG_GRANULE;
                } else {
                    // Unmapped page: skip to the next one.
                    g = (g / PAGE_SIZE + 1) * PAGE_SIZE;
                }
            }
        }

        let reachable = merge(spans);
        // Reclaimable = allocated heap minus reachable coverage.
        let heap_base = self.layout().heap_base;
        let heap_end = heap_base + self.heap_used().unwrap_or(0);
        let mut covered = 0u64;
        for (b, e) in &reachable {
            let lo = (*b).max(heap_base);
            let hi = (*e).min(heap_end);
            if lo < hi {
                covered += hi - lo;
            }
        }
        GcReport {
            live_capabilities: live,
            reachable,
            reclaimable_heap_bytes: (heap_end - heap_base).saturating_sub(covered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_combines_overlaps() {
        assert_eq!(merge(vec![(10, 20), (15, 30), (40, 50), (50, 60)]), vec![(10, 30), (40, 60)]);
        assert_eq!(merge(vec![]), vec![]);
    }
}
