//! Native (host-speed) Olden workload implementations against the
//! [`TracedHeap`], producing the pointer-event traces the Figure 3 limit
//! study consumes.
//!
//! "The benchmarks use a range of data structures, memory footprints,
//! and workloads to exercise various pointer access patterns and
//! densities" — beyond the four FPGA benchmarks, this module also
//! provides `em3d` (irregular bipartite dependence graph), `health`
//! (hierarchical linked lists), and `power` (deep multiway tree),
//! rounding out the suite.
//!
//! Every workload returns its trace plus a checksum, and each algorithm
//! mirrors its `dsl` twin where one exists (same structures, same
//! constants), so the two methodologies stay comparable.

use cheri_limit::{TPtr, Trace, TracedHeap};

use crate::params::OldenParams;

/// A completed native run.
#[derive(Debug)]
pub struct NativeRun {
    /// The recorded trace.
    pub trace: Trace,
    /// The workload's checksum (sorted-sum, MST cost, perimeter, ...).
    pub checksum: u64,
}

/// A native workload entry point.
pub type Workload = fn(&OldenParams) -> NativeRun;

/// The native workload set, in limit-study order.
pub const WORKLOADS: [(&str, Workload); 7] = [
    ("treeadd", treeadd),
    ("bisort", bisort),
    ("perimeter", perimeter),
    ("mst", mst),
    ("em3d", em3d),
    ("health", health),
    ("power", power),
];

/// Runs every native workload, returning their traces.
#[must_use]
pub fn all_traces(p: &OldenParams) -> Vec<Trace> {
    WORKLOADS.iter().map(|(_, f)| f(p).trace).collect()
}

fn scramble(x: i64) -> i64 {
    let mut t = (x.wrapping_add(0x9e37_79b9)).wrapping_mul(0x9E3779B97F4A7C15u64 as i64);
    t ^= ((t as u64) >> 29) as i64;
    t = t.wrapping_mul(0xBF58_476D);
    t ^= ((t as u64) >> 17) as i64;
    t & 0xf_ffff
}

// --- treeadd ----------------------------------------------------------

const VAL: u64 = 0;
const LEFT: u64 = 8;
const RIGHT: u64 = 16;

fn tree_build(h: &mut TracedHeap, depth: u32) -> TPtr {
    let n = h.alloc(24);
    h.store_int(n, VAL, 1);
    h.compute(4);
    if depth > 1 {
        let l = tree_build(h, depth - 1);
        h.store_ptr(n, LEFT, l);
        let r = tree_build(h, depth - 1);
        h.store_ptr(n, RIGHT, r);
    }
    n
}

fn tree_sum(h: &mut TracedHeap, p: TPtr) -> i64 {
    if p.is_null() {
        return 0;
    }
    h.compute(4);
    let v = h.load_int(p, VAL);
    let l = h.load_ptr(p, LEFT);
    let r = h.load_ptr(p, RIGHT);
    v + tree_sum(h, l) + tree_sum(h, r)
}

/// `treeadd`: build a binary tree, sum it.
#[must_use]
pub fn treeadd(p: &OldenParams) -> NativeRun {
    let mut h = TracedHeap::new();
    let root = tree_build(&mut h, p.treeadd_depth.min(22));
    let sum = tree_sum(&mut h, root);
    NativeRun { trace: h.finish("treeadd"), checksum: sum as u64 }
}

// --- bisort -----------------------------------------------------------

fn bisort_build(h: &mut TracedHeap, depth: u32, idx: i64) -> TPtr {
    let n = h.alloc(24);
    h.compute(4);
    if depth == 0 {
        h.store_int(n, VAL, scramble(idx));
    } else {
        let l = bisort_build(h, depth - 1, idx * 2);
        h.store_ptr(n, LEFT, l);
        let r = bisort_build(h, depth - 1, idx * 2 + 1);
        h.store_ptr(n, RIGHT, r);
    }
    n
}

fn bisort_cmpswap(h: &mut TracedHeap, a: TPtr, b: TPtr, dir: i64) {
    h.compute(3);
    let al = h.load_ptr(a, LEFT);
    if al.is_null() {
        let va = h.load_int(a, VAL);
        let vb = h.load_int(b, VAL);
        if (i64::from(va > vb) ^ dir) != 0 {
            h.store_int(a, VAL, vb);
            h.store_int(b, VAL, va);
        }
    } else {
        let bl = h.load_ptr(b, LEFT);
        let ar = h.load_ptr(a, RIGHT);
        let br = h.load_ptr(b, RIGHT);
        bisort_cmpswap(h, al, bl, dir);
        bisort_cmpswap(h, ar, br, dir);
    }
}

fn bisort_bimerge(h: &mut TracedHeap, p: TPtr, dir: i64) {
    h.compute(2);
    let l = h.load_ptr(p, LEFT);
    if l.is_null() {
        return;
    }
    let r = h.load_ptr(p, RIGHT);
    bisort_cmpswap(h, l, r, dir);
    bisort_bimerge(h, l, dir);
    bisort_bimerge(h, r, dir);
}

fn bisort_sort(h: &mut TracedHeap, p: TPtr, dir: i64) {
    h.compute(2);
    let l = h.load_ptr(p, LEFT);
    if l.is_null() {
        return;
    }
    let r = h.load_ptr(p, RIGHT);
    bisort_sort(h, l, dir);
    bisort_sort(h, r, 1 - dir);
    bisort_bimerge(h, p, dir);
}

fn bisort_leaves(h: &mut TracedHeap, p: TPtr, out: &mut Vec<i64>) {
    let l = h.load_ptr(p, LEFT);
    if l.is_null() {
        out.push(h.load_int(p, VAL));
        return;
    }
    let r = h.load_ptr(p, RIGHT);
    bisort_leaves(h, l, out);
    bisort_leaves(h, r, out);
}

/// `bisort`: bitonic sort over a perfect tree of `2^bisort_log2` leaves.
///
/// # Panics
///
/// Panics if the sort produced an unsorted leaf sequence (an algorithm
/// bug, not a data condition).
#[must_use]
pub fn bisort(p: &OldenParams) -> NativeRun {
    let mut h = TracedHeap::new();
    let depth = p.bisort_log2.min(18);
    let root = bisort_build(&mut h, depth, 0);
    bisort_sort(&mut h, root, 0);
    let mut leaves = Vec::new();
    bisort_leaves(&mut h, root, &mut leaves);
    assert!(leaves.windows(2).all(|w| w[0] <= w[1]), "bisort failed to sort");
    let checksum: i64 = leaves.iter().sum();
    NativeRun { trace: h.finish("bisort"), checksum: checksum as u64 }
}

// --- perimeter ---------------------------------------------------------

const COLOR: u64 = 0;
const QNW: u64 = 8;
const QNE: u64 = 16;
const QSW: u64 = 24;
const QSE: u64 = 32;

struct Disc {
    cx: i64,
    cy: i64,
    r2: i64,
}

fn classify(d: &Disc, x: i64, y: i64, s: i64) -> i64 {
    if s == 1 {
        let (dx, dy) = (x - d.cx, y - d.cy);
        return i64::from(dx * dx + dy * dy <= d.r2);
    }
    let nx = d.cx.clamp(x, x + s);
    let ny = d.cy.clamp(y, y + s);
    let (dx, dy) = (nx - d.cx, ny - d.cy);
    if dx * dx + dy * dy > d.r2 {
        return 0;
    }
    let fx = (x - d.cx).abs().max((x + s - d.cx).abs());
    let fy = (y - d.cy).abs().max((y + s - d.cy).abs());
    if fx * fx + fy * fy <= d.r2 {
        return 1;
    }
    2
}

fn qt_build(h: &mut TracedHeap, d: &Disc, x: i64, y: i64, s: i64) -> TPtr {
    h.compute(20); // the classify arithmetic
    let cls = classify(d, x, y, s);
    let n = h.alloc(40);
    h.store_int(n, COLOR, cls);
    if cls == 2 {
        let half = s / 2;
        let nw = qt_build(h, d, x, y, half);
        h.store_ptr(n, QNW, nw);
        let ne = qt_build(h, d, x + half, y, half);
        h.store_ptr(n, QNE, ne);
        let sw = qt_build(h, d, x, y + half, half);
        h.store_ptr(n, QSW, sw);
        let se = qt_build(h, d, x + half, y + half, half);
        h.store_ptr(n, QSE, se);
    }
    n
}

fn qt_contact(h: &mut TracedHeap, a: TPtr, b: TPtr, s: i64, dir: i64) -> i64 {
    h.compute(6);
    let ca = h.load_int(a, COLOR);
    if ca == 0 {
        return 0;
    }
    let cb = h.load_int(b, COLOR);
    if cb == 0 {
        return 0;
    }
    if ca == 1 && cb == 1 {
        return s;
    }
    let half = s / 2;
    let (aa1, aa2) = if ca == 2 {
        if dir == 0 {
            (h.load_ptr(a, QNE), h.load_ptr(a, QSE))
        } else {
            (h.load_ptr(a, QSW), h.load_ptr(a, QSE))
        }
    } else {
        (a, a)
    };
    let (bb1, bb2) = if cb == 2 {
        if dir == 0 {
            (h.load_ptr(b, QNW), h.load_ptr(b, QSW))
        } else {
            (h.load_ptr(b, QNW), h.load_ptr(b, QNE))
        }
    } else {
        (b, b)
    };
    qt_contact(h, aa1, bb1, half, dir) + qt_contact(h, aa2, bb2, half, dir)
}

fn qt_perim(h: &mut TracedHeap, p: TPtr, s: i64) -> i64 {
    h.compute(8);
    let c = h.load_int(p, COLOR);
    if c == 0 {
        return 0;
    }
    if c == 1 {
        return 4 * s;
    }
    let half = s / 2;
    let nw = h.load_ptr(p, QNW);
    let ne = h.load_ptr(p, QNE);
    let sw = h.load_ptr(p, QSW);
    let se = h.load_ptr(p, QSE);
    let mut acc = qt_perim(h, nw, half)
        + qt_perim(h, ne, half)
        + qt_perim(h, sw, half)
        + qt_perim(h, se, half);
    acc -= 2 * qt_contact(h, nw, ne, half, 0);
    acc -= 2 * qt_contact(h, sw, se, half, 0);
    acc -= 2 * qt_contact(h, nw, sw, half, 1);
    acc -= 2 * qt_contact(h, ne, se, half, 1);
    acc
}

/// `perimeter`: quadtree perimeter of a disc image.
#[must_use]
pub fn perimeter(p: &OldenParams) -> NativeRun {
    let mut h = TracedHeap::new();
    let size = 1i64 << p.perimeter_levels.min(12);
    let d = Disc { cx: size / 2, cy: size / 2, r2: (size * 3 / 8) * (size * 3 / 8) };
    let root = qt_build(&mut h, &d, 0, 0, size);
    let perim = qt_perim(&mut h, root, size);
    NativeRun { trace: h.finish("perimeter"), checksum: perim as u64 }
}

// --- mst ----------------------------------------------------------------

/// `mst`: Prim's algorithm over hash-table adjacency (mirrors
/// `dsl::mst`).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn mst(p: &OldenParams) -> NativeRun {
    const MINDIST: u64 = 0;
    const INTREE: u64 = 8;
    const HASH: u64 = 16;
    const WEIGHT: u64 = 0;
    const NEIGH: u64 = 16;
    const NEXT: u64 = 24;
    const NB: u64 = 16;
    const INF: i64 = 1 << 40;

    let n = p.mst_vertices.min(1024) as i64;
    let deg = i64::from(p.mst_degree);
    let mut h = TracedHeap::new();

    // The mst-specific mixer — identical constants to dsl::mst, so the
    // two methodologies build the same graph.
    fn mst_scramble(x: i64) -> i64 {
        let mut t = x.wrapping_add(0x5851_F42D).wrapping_mul(0x5851F42D4C957F2Du64 as i64);
        t ^= ((t as u64) >> 33) as i64;
        t = t.wrapping_mul(0xD6E8_FEB8);
        (t ^ ((t as u64) >> 27) as i64) & 0x7fff_ffff
    }

    // vref array + vertices + hash tables.
    let varr = h.alloc(8 * n as u64);
    for i in 0..n {
        let v = h.alloc(24);
        let tab = h.alloc(8 * NB);
        h.store_int(v, MINDIST, INF);
        h.store_int(v, INTREE, 0);
        h.store_ptr(v, HASH, tab);
        h.store_ptr(varr, 8 * i as u64, v);
    }

    let weightof = |i: i64, j: i64| {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        mst_scramble(a * n + b).rem_euclid(1000) + 1
    };

    let insert = |h: &mut TracedHeap, v: TPtr, w: TPtr, wt: i64| {
        h.compute(8);
        let tab = h.load_ptr(v, HASH);
        let key = h.addr_of(w) as i64;
        let bucket_off = (((key >> 4) as u64) % NB) * 8;
        let e = h.alloc(32);
        h.store_int(e, WEIGHT, wt);
        h.store_int(e, 8, key);
        h.store_ptr(e, NEIGH, w);
        let head = h.load_ptr(tab, bucket_off);
        h.store_ptr(e, NEXT, head);
        h.store_ptr(tab, bucket_off, e);
    };

    let pair = |h: &mut TracedHeap, i: i64, j: i64| {
        let v = h.load_ptr(varr, 8 * i as u64);
        let w = h.load_ptr(varr, 8 * j as u64);
        let wt = weightof(i, j);
        insert(h, v, w, wt);
        insert(h, w, v, wt);
    };

    for i in 0..n - 1 {
        pair(&mut h, i, i + 1);
    }
    for i in 0..n {
        for k in 0..deg {
            let j = mst_scramble(i * deg + k + 7).rem_euclid(n);
            if j != i {
                pair(&mut h, i, j);
            }
        }
    }

    // Prim.
    let v0 = h.load_ptr(varr, 0);
    h.store_int(v0, MINDIST, 0);
    let mut cost = 0i64;
    for _ in 0..n {
        let mut best = INF + 1;
        let mut bv = TPtr::NULL;
        for i in 0..n {
            let v = h.load_ptr(varr, 8 * i as u64);
            h.compute(3);
            if h.load_int(v, INTREE) == 0 {
                let md = h.load_int(v, MINDIST);
                if md < best {
                    best = md;
                    bv = v;
                }
            }
        }
        h.store_int(bv, INTREE, 1);
        cost += best;
        let tab = h.load_ptr(bv, HASH);
        for b in 0..NB {
            let mut e = h.load_ptr(tab, b * 8);
            while !e.is_null() {
                h.compute(4);
                let nv = h.load_ptr(e, NEIGH);
                if h.load_int(nv, INTREE) == 0 {
                    let wt = h.load_int(e, WEIGHT);
                    if wt < h.load_int(nv, MINDIST) {
                        h.store_int(nv, MINDIST, wt);
                    }
                }
                e = h.load_ptr(e, NEXT);
            }
        }
    }
    NativeRun { trace: h.finish("mst"), checksum: cost as u64 }
}

// --- em3d ----------------------------------------------------------------

/// `em3d`: iterate values over an irregular bipartite dependence graph
/// (electromagnetic field solver structure). Node layout:
/// `{ value, deg, dep[0..deg] (ptr), coeff[0..deg] }`.
#[must_use]
pub fn em3d(p: &OldenParams) -> NativeRun {
    let n = p.em3d_nodes as i64;
    let deg = p.em3d_degree.max(1) as u64;
    let iters = p.em3d_iters;
    let node_size = 16 + 8 * deg + 8 * deg;
    let mut h = TracedHeap::new();

    let make_field = |h: &mut TracedHeap, salt: i64| -> Vec<TPtr> {
        (0..n)
            .map(|i| {
                let nd = h.alloc(node_size);
                h.store_int(nd, 0, scramble(i + salt) % 1000);
                h.store_int(nd, 8, deg as i64);
                nd
            })
            .collect()
    };
    let e_nodes = make_field(&mut h, 1);
    let h_nodes = make_field(&mut h, 2);

    let wire = |h: &mut TracedHeap, from: &[TPtr], to: &[TPtr], salt: i64| {
        for (i, nd) in from.iter().enumerate() {
            for k in 0..deg {
                let j = scramble(i as i64 * deg as i64 + k as i64 + salt).unsigned_abs() as usize
                    % to.len();
                h.store_ptr(*nd, 16 + 8 * k, to[j]);
                h.store_int(*nd, 16 + 8 * deg + 8 * k, scramble(salt + k as i64) % 7 + 1);
            }
        }
    };
    wire(&mut h, &e_nodes, &h_nodes, 11);
    wire(&mut h, &h_nodes, &e_nodes, 23);

    for _ in 0..iters {
        for field in [&e_nodes, &h_nodes] {
            for nd in field.iter() {
                let mut v = h.load_int(*nd, 0);
                for k in 0..deg {
                    let dep = h.load_ptr(*nd, 16 + 8 * k);
                    let coeff = h.load_int(*nd, 16 + 8 * deg + 8 * k);
                    let dv = h.load_int(dep, 0);
                    v -= (coeff * dv) >> 8;
                    h.compute(4);
                }
                h.store_int(*nd, 0, v & 0xffff_ffff);
            }
        }
    }
    let mut checksum = 0i64;
    for nd in e_nodes.iter().chain(&h_nodes) {
        checksum = checksum.wrapping_add(h.load_int(*nd, 0));
    }
    NativeRun { trace: h.finish("em3d"), checksum: checksum as u64 }
}

// --- health ----------------------------------------------------------------

/// `health`: a 4-ary hierarchy of villages, each with a waiting list of
/// patients; each step, patients join at the leaves and some are
/// referred up one level (linked-list splicing up a tree).
#[must_use]
pub fn health(p: &OldenParams) -> NativeRun {
    // village { list_head (ptr), level, child[4] (ptr) }
    const HEAD: u64 = 0;
    const LEVEL: u64 = 8;
    const CHILD0: u64 = 16;
    // patient { id, next (ptr) }
    const PID: u64 = 0;
    const PNEXT: u64 = 8;

    let mut h = TracedHeap::new();

    fn build_village(h: &mut TracedHeap, level: u32) -> TPtr {
        let v = h.alloc(48);
        h.store_int(v, LEVEL, i64::from(level));
        if level > 0 {
            for c in 0..4 {
                let ch = build_village(h, level - 1);
                h.store_ptr(v, CHILD0 + 8 * c, ch);
            }
        }
        v
    }

    let root = build_village(&mut h, p.health_levels.min(6));

    // Collect villages level by level (parents after children).
    let mut all = vec![root];
    let mut i = 0;
    while i < all.len() {
        let v = all[i];
        if h.load_int(v, LEVEL) > 0 {
            for c in 0..4 {
                let ch = h.load_ptr(v, CHILD0 + 8 * c);
                all.push(ch);
            }
        }
        i += 1;
    }

    let mut next_id = 1i64;
    let mut checksum = 0i64;
    for step in 0..p.health_steps {
        // New patients arrive at every leaf.
        for &v in &all {
            if h.load_int(v, LEVEL) == 0 {
                let pt = h.alloc(16);
                h.store_int(pt, PID, next_id);
                next_id += 1;
                let head = h.load_ptr(v, HEAD);
                h.store_ptr(pt, PNEXT, head);
                h.store_ptr(v, HEAD, pt);
            }
        }
        // Every village refers its list head up to its first child's
        // parent (i.e. pops migrate toward the root).
        for &v in all.iter().rev() {
            if h.load_int(v, LEVEL) > 0 {
                for c in 0..4 {
                    let ch = h.load_ptr(v, CHILD0 + 8 * c);
                    let pt = h.load_ptr(ch, HEAD);
                    if !pt.is_null() && (i64::from(step) + h.load_int(pt, PID)) % 3 == 0 {
                        let rest = h.load_ptr(pt, PNEXT);
                        h.store_ptr(ch, HEAD, rest);
                        let head = h.load_ptr(v, HEAD);
                        h.store_ptr(pt, PNEXT, head);
                        h.store_ptr(v, HEAD, pt);
                    }
                    h.compute(6);
                }
            }
        }
        // Root discharges one patient per step.
        let pt = h.load_ptr(root, HEAD);
        if !pt.is_null() {
            checksum = checksum.wrapping_add(h.load_int(pt, PID));
            let rest = h.load_ptr(pt, PNEXT);
            h.store_ptr(root, HEAD, rest);
            h.free(pt);
        }
    }
    NativeRun { trace: h.finish("health"), checksum: checksum as u64 }
}

// --- power ----------------------------------------------------------------

/// `power`: a fixed feeder/lateral/branch/leaf hierarchy; demand values
/// flow up, price signals flow down, twice.
#[must_use]
pub fn power(p: &OldenParams) -> NativeRun {
    // node { demand, price, child[4] (ptr) }
    const DEMAND: u64 = 0;
    const PRICE: u64 = 8;
    const CHILD0: u64 = 16;

    fn build(h: &mut TracedHeap, depth: u32, salt: i64) -> TPtr {
        let n = h.alloc(48);
        h.store_int(n, DEMAND, scramble(salt) % 100 + 1);
        if depth > 0 {
            for c in 0..4u64 {
                let ch = build(h, depth - 1, salt * 4 + c as i64 + 1);
                h.store_ptr(n, CHILD0 + 8 * c, ch);
            }
        }
        n
    }

    fn total_demand(h: &mut TracedHeap, n: TPtr, depth: u32) -> i64 {
        h.compute(3);
        let mut d = h.load_int(n, DEMAND);
        if depth > 0 {
            for c in 0..4 {
                let ch = h.load_ptr(n, CHILD0 + 8 * c);
                d += total_demand(h, ch, depth - 1);
            }
        }
        h.store_int(n, DEMAND, d);
        d
    }

    fn set_price(h: &mut TracedHeap, n: TPtr, depth: u32, price: i64) {
        h.compute(3);
        h.store_int(n, PRICE, price);
        if depth > 0 {
            for c in 0..4 {
                let ch = h.load_ptr(n, CHILD0 + 8 * c);
                let bump = h.load_int(n, DEMAND) % 7;
                set_price(h, ch, depth - 1, price + bump);
            }
        }
    }

    let mut h = TracedHeap::new();
    let depth = 4;
    let feeders: Vec<TPtr> =
        (0..p.power_feeders).map(|i| build(&mut h, depth, i64::from(i) + 1)).collect();
    let mut checksum = 0i64;
    for round in 0..2 {
        for f in &feeders {
            let d = total_demand(&mut h, *f, depth);
            set_price(&mut h, *f, depth, d % 1000 + round);
            checksum = checksum.wrapping_add(d);
        }
    }
    NativeRun { trace: h.finish("power"), checksum: checksum as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OldenParams {
        OldenParams::scaled()
    }

    #[test]
    fn all_workloads_produce_nonempty_traces() {
        for (name, f) in WORKLOADS {
            let run = f(&params());
            assert!(run.trace.accesses() > 100, "{name} trace too small");
            assert!(!run.trace.objects.is_empty(), "{name} allocated nothing");
            assert_eq!(run.trace.name, name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for (name, f) in WORKLOADS {
            let a = f(&params());
            let b = f(&params());
            assert_eq!(a.checksum, b.checksum, "{name} not deterministic");
            assert_eq!(a.trace.events.len(), b.trace.events.len());
        }
    }

    #[test]
    fn treeadd_checksum_is_node_count() {
        let p = params();
        let run = treeadd(&p);
        assert_eq!(run.checksum, (1 << p.treeadd_depth) - 1);
    }

    #[test]
    fn native_matches_dsl_checksums() {
        // The native and DSL implementations share algorithms and
        // constants; their results must agree.
        use cheri_cc::strategy::LegacyPtr;
        let p = OldenParams::scaled();
        for (bench, native_sum) in [
            (crate::dsl::DslBench::Treeadd, treeadd(&p).checksum),
            (crate::dsl::DslBench::Perimeter, perimeter(&p).checksum),
            (crate::dsl::DslBench::Mst, mst(&p).checksum),
        ] {
            let cfg = beri_sim::MachineConfig {
                mem_bytes: bench.mem_needed(&p, &LegacyPtr),
                ..Default::default()
            };
            let run = crate::dsl::run_bench(bench, &p, &LegacyPtr, cfg).unwrap();
            assert_eq!(
                run.outcome.exit_value(),
                Some(native_sum),
                "{} native vs dsl",
                bench.name()
            );
        }
    }

    #[test]
    fn bisort_native_matches_dsl_sum() {
        use cheri_cc::strategy::LegacyPtr;
        let p = OldenParams::scaled();
        let native_sum = bisort(&p).checksum;
        let cfg = beri_sim::MachineConfig {
            mem_bytes: crate::dsl::DslBench::Bisort.mem_needed(&p, &LegacyPtr),
            ..Default::default()
        };
        let run = crate::dsl::run_bench(crate::dsl::DslBench::Bisort, &p, &LegacyPtr, cfg).unwrap();
        // prints: [violations, sum_before, sum_after]
        assert_eq!(run.checksums()[2], native_sum);
    }

    #[test]
    fn mst_cost_within_bounds() {
        let p = params();
        let run = mst(&p);
        let n = u64::from(p.mst_vertices);
        assert!(run.checksum >= n - 1);
        assert!(run.checksum <= (n - 1) * 1000);
    }

    #[test]
    fn health_frees_objects() {
        let run = health(&params());
        let frees = run
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, cheri_limit::Event::Free { .. }))
            .count();
        assert!(frees > 0, "health must exercise free()");
    }
}
