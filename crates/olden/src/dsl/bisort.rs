//! `bisort`: bitonic sort over a perfect binary tree.
//!
//! The values live at the `2^k` leaves of a perfect tree; internal nodes
//! are routing structure. `bisort` recursively sorts the left subtree
//! ascending and the right descending, then `bimerge` runs the bitonic
//! merge by pairwise compare-exchange of corresponding leaves of sibling
//! subtrees — the classic bitonic network realised over pointers, which
//! is the access pattern of the Olden original ("The sorting phase
//! involves traversing the tree and swapping pointers ... dominated by
//! cache miss time", Section 8).
//!
//! The module prints three checksums: the sortedness-violation count
//! (must be 0), and the leaf-value sum before and after sorting (must be
//! equal).

use cheri_cc::ir::build::*;
use cheri_cc::ir::{CmpOp, Expr, FuncDef, Module, Stmt, StructDef, Ty};

const VAL: usize = 0;
const LEFT: usize = 1;
const RIGHT: usize = 2;
/// `cell { val }` — the running "previous leaf" during the sortedness
/// check.
const CELL_VAL: usize = 0;

/// Builds the `bisort` module for `2^log2_leaves` values.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn module(log2_leaves: u32) -> Module {
    let node = 0usize;
    let cell = 1usize;
    let (scramble, build, bisort, bimerge, cmpswap, checkf, sumleaf, main) =
        (0usize, 1, 2, 3, 4, 5, 6, 7);

    // scramble(x): a 64-bit mixer producing the pseudo-random leaf
    // values (the Olden original seeds with random()).
    let scramble_fn = FuncDef {
        name: "scramble",
        params: 1,
        ret: Some(Ty::I64),
        locals: vec![Ty::I64, Ty::I64],
        body: vec![
            Stmt::Let(1, mul(add(l(0), c(0x9e37_79b9)), c(0x9E3779B97F4A7C15u64 as i64))),
            Stmt::Let(1, bxor(l(1), shr(l(1), c(29)))),
            Stmt::Let(1, mul(l(1), c(0xBF58_476D))),
            Stmt::Let(1, bxor(l(1), shr(l(1), c(17)))),
            Stmt::Return(Some(band(l(1), c(0xf_ffff)))),
        ],
    };

    // build(depth, idx): depth 0 => leaf with value scramble(idx).
    let build_fn = FuncDef {
        name: "build",
        params: 2,
        ret: Some(Ty::ptr(node)),
        // locals: depth, idx, n, tmp, v
        locals: vec![Ty::I64, Ty::I64, Ty::ptr(node), Ty::ptr(node), Ty::I64],
        body: vec![
            Stmt::Let(2, alloc(node, c(1))),
            Stmt::If {
                cond: cmp(CmpOp::Eq, l(0), c(0)),
                then: vec![
                    Stmt::Let(4, call(scramble, vec![l(1)])),
                    Stmt::Store { ptr: l(2), strukt: node, field: VAL, value: l(4) },
                ],
                els: vec![
                    Stmt::Let(3, call(build, vec![sub(l(0), c(1)), mul(l(1), c(2))])),
                    Stmt::StorePtr { ptr: l(2), strukt: node, field: LEFT, value: l(3) },
                    Stmt::Let(3, call(build, vec![sub(l(0), c(1)), add(mul(l(1), c(2)), c(1))])),
                    Stmt::StorePtr { ptr: l(2), strukt: node, field: RIGHT, value: l(3) },
                ],
            },
            Stmt::Return(Some(l(2))),
        ],
    };

    let leaf_test = |p: Expr| is_null(loadp(p, node, LEFT));

    // cmpswap(a, b, dir): pairwise compare-exchange of corresponding
    // leaves of two same-shape subtrees; dir=0 ascending.
    let cmpswap_fn = FuncDef {
        name: "cmpswap",
        params: 3,
        ret: None,
        // locals: a, b, dir, va, vb, t
        locals: vec![Ty::ptr(node), Ty::ptr(node), Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        body: vec![Stmt::If {
            cond: leaf_test(l(0)),
            then: vec![
                Stmt::Let(3, load(l(0), node, VAL)),
                Stmt::Let(4, load(l(1), node, VAL)),
                Stmt::Let(5, bxor(cmp(CmpOp::Gt, l(3), l(4)), l(2))),
                Stmt::If {
                    cond: l(5),
                    then: vec![
                        Stmt::Store { ptr: l(0), strukt: node, field: VAL, value: l(4) },
                        Stmt::Store { ptr: l(1), strukt: node, field: VAL, value: l(3) },
                    ],
                    els: vec![],
                },
            ],
            els: vec![
                Stmt::Expr(call(
                    cmpswap,
                    vec![loadp(l(0), node, LEFT), loadp(l(1), node, LEFT), l(2)],
                )),
                Stmt::Expr(call(
                    cmpswap,
                    vec![loadp(l(0), node, RIGHT), loadp(l(1), node, RIGHT), l(2)],
                )),
            ],
        }],
    };

    // bimerge(p, dir): merge the bitonic sequence under p.
    let bimerge_fn = FuncDef {
        name: "bimerge",
        params: 2,
        ret: None,
        locals: vec![Ty::ptr(node), Ty::I64],
        body: vec![Stmt::If {
            cond: leaf_test(l(0)),
            then: vec![],
            els: vec![
                Stmt::Expr(call(
                    cmpswap,
                    vec![loadp(l(0), node, LEFT), loadp(l(0), node, RIGHT), l(1)],
                )),
                Stmt::Expr(call(bimerge, vec![loadp(l(0), node, LEFT), l(1)])),
                Stmt::Expr(call(bimerge, vec![loadp(l(0), node, RIGHT), l(1)])),
            ],
        }],
    };

    // bisort(p, dir).
    let bisort_fn = FuncDef {
        name: "bisort",
        params: 2,
        ret: None,
        locals: vec![Ty::ptr(node), Ty::I64],
        body: vec![Stmt::If {
            cond: leaf_test(l(0)),
            then: vec![],
            els: vec![
                Stmt::Expr(call(bisort, vec![loadp(l(0), node, LEFT), l(1)])),
                Stmt::Expr(call(bisort, vec![loadp(l(0), node, RIGHT), sub(c(1), l(1))])),
                Stmt::Expr(call(bimerge, vec![l(0), l(1)])),
            ],
        }],
    };

    // check(p, cell): in-order leaf walk counting descents.
    let check_fn = FuncDef {
        name: "check",
        params: 2,
        ret: Some(Ty::I64),
        // locals: p, cell, v, x, y
        locals: vec![Ty::ptr(node), Ty::ptr(cell), Ty::I64, Ty::I64, Ty::I64],
        body: vec![
            Stmt::If {
                cond: leaf_test(l(0)),
                then: vec![
                    Stmt::Let(2, load(l(0), node, VAL)),
                    Stmt::Let(3, cmp(CmpOp::Lt, l(2), load(l(1), cell, CELL_VAL))),
                    Stmt::Store { ptr: l(1), strukt: cell, field: CELL_VAL, value: l(2) },
                    Stmt::Return(Some(l(3))),
                ],
                els: vec![],
            },
            Stmt::Let(3, call(checkf, vec![loadp(l(0), node, LEFT), l(1)])),
            Stmt::Let(4, call(checkf, vec![loadp(l(0), node, RIGHT), l(1)])),
            Stmt::Return(Some(add(l(3), l(4)))),
        ],
    };

    // sumleaf(p): checksum of the value multiset.
    let sumleaf_fn = FuncDef {
        name: "sumleaf",
        params: 1,
        ret: Some(Ty::I64),
        locals: vec![Ty::ptr(node), Ty::I64, Ty::I64],
        body: vec![
            Stmt::If {
                cond: leaf_test(l(0)),
                then: vec![Stmt::Return(Some(load(l(0), node, VAL)))],
                els: vec![],
            },
            Stmt::Let(1, call(sumleaf, vec![loadp(l(0), node, LEFT)])),
            Stmt::Let(2, call(sumleaf, vec![loadp(l(0), node, RIGHT)])),
            Stmt::Return(Some(add(l(1), l(2)))),
        ],
    };

    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        // locals: root, prevcell, sum_before, sum_after, violations
        locals: vec![Ty::ptr(node), Ty::ptr(cell), Ty::I64, Ty::I64, Ty::I64],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(0, call(build, vec![c(i64::from(log2_leaves)), c(0)])),
            Stmt::Let(2, call(sumleaf, vec![l(0)])),
            Stmt::Phase(2),
            Stmt::Expr(call(bisort, vec![l(0), c(0)])),
            Stmt::Phase(3),
            Stmt::Let(1, alloc(cell, c(1))),
            Stmt::Store { ptr: l(1), strukt: cell, field: CELL_VAL, value: c(-1) },
            Stmt::Let(4, call(checkf, vec![l(0), l(1)])),
            Stmt::Let(3, call(sumleaf, vec![l(0)])),
            Stmt::Print(l(4)),
            Stmt::Print(l(2)),
            Stmt::Print(l(3)),
            Stmt::Return(Some(l(4))),
        ],
    };

    Module {
        structs: vec![
            StructDef { name: "node", fields: vec![Ty::I64, Ty::ptr(node), Ty::ptr(node)] },
            StructDef { name: "cell", fields: vec![Ty::I64] },
        ],
        funcs: vec![
            scramble_fn,
            build_fn,
            bisort_fn,
            bimerge_fn,
            cmpswap_fn,
            check_fn,
            sumleaf_fn,
            main_fn,
        ],
        entry: main,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check as validate, Limits};
    use cheri_cc::strategy::LegacyPtr;

    #[test]
    fn module_checks() {
        validate(&module(4), Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    #[test]
    fn sorts_and_preserves_values() {
        let prog = cheri_cc::compile(&module(6), &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        assert_eq!(out.exit_value(), Some(0), "violations must be zero");
        assert_eq!(out.prints[0], 0);
        assert_eq!(out.prints[1], out.prints[2], "value multiset preserved");
        assert!(out.prints[1] > 0);
    }
}
