//! The four FPGA benchmarks of Section 8, authored in the `cheri-cc` IR.
//!
//! "The four benchmarks were bisort, mst, treeadd and perimeter. To
//! enable comparison, we ran the benchmarks with the same parameters as
//! used in the evaluation of Hardbound: bisort 250000 0, mst 1024 0,
//! treeadd 21 1 0 and perimeter 12 0."
//!
//! Each module:
//!
//! * issues `SYS_PHASE 1` when allocation begins and `SYS_PHASE 2` when
//!   computation begins (Figure 4 "decomposed into allocation and
//!   computation phases"), and `SYS_PHASE 3` before any verification
//!   epilogue;
//! * prints its result checksum(s) via `SYS_PRINT`, so harnesses assert
//!   that the MIPS, CCured-style and CHERI binaries computed the same
//!   answer.

mod bisort;
mod mst;
mod perimeter;
mod treeadd;

use beri_sim::machine::CapFormat;
use beri_sim::{MachineConfig, Stats};
use cheri_asm::Program;
use cheri_cc::ir::Module;
use cheri_cc::strategy::PtrStrategy;
use cheri_cc::{compile, CompileError};
use cheri_os::{boot, Kernel, KernelConfig, OsError, RunOutcome};

use crate::params::OldenParams;

/// One of the Section 8 benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DslBench {
    /// Bitonic sort over a perfect binary tree.
    Bisort,
    /// Minimum spanning tree with per-vertex hash tables.
    Mst,
    /// Recursive binary-tree summation.
    Treeadd,
    /// Quadtree image perimeter.
    Perimeter,
}

impl DslBench {
    /// All four, in the paper's Figure 4 order.
    pub const ALL: [DslBench; 4] =
        [DslBench::Bisort, DslBench::Mst, DslBench::Treeadd, DslBench::Perimeter];

    /// The benchmark's name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DslBench::Bisort => "bisort",
            DslBench::Mst => "mst",
            DslBench::Treeadd => "treeadd",
            DslBench::Perimeter => "perimeter",
        }
    }

    /// Builds the IR module at the given problem size.
    #[must_use]
    pub fn module(self, p: &OldenParams) -> Module {
        match self {
            DslBench::Bisort => bisort::module(p.bisort_log2),
            DslBench::Mst => mst::module(p.mst_vertices, p.mst_degree),
            DslBench::Treeadd => treeadd::module(p.treeadd_depth),
            DslBench::Perimeter => perimeter::module(p.perimeter_levels),
        }
    }

    /// A rough physical-memory requirement for the workload under the
    /// given strategy (heap + headroom), used to size the machine.
    #[must_use]
    pub fn mem_needed(self, p: &OldenParams, strategy: &dyn PtrStrategy) -> usize {
        let ptr = strategy.ptr_size();
        let node = (8 + 2 * ptr).div_ceil(32) * 32; // worst-case rounding
        let heap = match self {
            DslBench::Treeadd => (1u64 << (p.treeadd_depth + 1)) * node,
            DslBench::Bisort => (1u64 << (p.bisort_log2 + 1)) * node,
            DslBench::Perimeter => {
                // Nodes scale with the image perimeter, ~O(2^levels · levels).
                (1u64 << p.perimeter_levels) * 64 * (8 + 4 * ptr)
            }
            DslBench::Mst => {
                let per_vertex = 16 + 3 * ptr // vertex
                    + 16 * ptr // buckets
                    + u64::from(2 * (p.mst_degree + 1)) * (16 + 2 * ptr).div_ceil(32) * 32;
                u64::from(p.mst_vertices) * per_vertex * 2
            }
        };
        usize::try_from(heap.div_ceil(1 << 20) + 8).expect("sane size") << 20
    }
}

/// Builds a machine configuration sized for the workload with the
/// capability format matching the strategy (the 128-bit strategy needs
/// a 16-byte-granule machine).
#[must_use]
pub fn machine_config(
    bench: DslBench,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
) -> MachineConfig {
    MachineConfig {
        mem_bytes: bench.mem_needed(params, strategy),
        cap_format: if strategy.ptr_size() == 16 { CapFormat::C128 } else { CapFormat::C256 },
        ..MachineConfig::default()
    }
}

/// The measured run of one benchmark binary.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Strategy ("mips", "ccured", "cheri", ...).
    pub mode: &'static str,
    /// Kernel-level outcome (exit, stats, prints, pages).
    pub outcome: RunOutcome,
    /// Statistics of the allocation phase (phase 1 → phase 2).
    pub alloc: Stats,
    /// Statistics of the computation phase (phase 2 → phase 3 or end of
    /// run).
    pub compute: Stats,
    /// Bytes of heap the program bump-allocated (the Figure 5 x-axis
    /// for the baseline binary).
    pub heap_used: u64,
}

impl BenchRun {
    /// The benchmark's printed checksums.
    #[must_use]
    pub fn checksums(&self) -> &[u64] {
        &self.outcome.prints
    }

    /// Total cycles across allocation + computation (excludes any
    /// verification epilogue).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.alloc.cycles + self.compute.cycles
    }
}

/// Compiles `bench` under `strategy`.
///
/// # Errors
///
/// Propagates [`CompileError`].
pub fn compile_bench(
    bench: DslBench,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
) -> Result<Program, CompileError> {
    compile(&bench.module(params), strategy, cheri_cc::codegen::CompileOpts::default())
}

/// [`compile_bench`] plus the workload's symbol table (function name →
/// PC range), for profiled runs.
///
/// # Errors
///
/// Propagates [`CompileError`].
pub fn compile_bench_with_symbols(
    bench: DslBench,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
) -> Result<(Program, cheri_prof::SymbolTable), CompileError> {
    compile_module_with_symbols(&bench.module(params), strategy)
}

/// Compiles an arbitrary IR module under `strategy` and converts its
/// symbol table to the profiler's form — the workload-agnostic core of
/// [`compile_bench_with_symbols`], shared with the `cheri-work`
/// workloads.
///
/// # Errors
///
/// Propagates [`CompileError`].
pub fn compile_module_with_symbols(
    module: &Module,
    strategy: &dyn PtrStrategy,
) -> Result<(Program, cheri_prof::SymbolTable), CompileError> {
    let (program, syms) = cheri_cc::compile_with_symbols(
        module,
        strategy,
        cheri_cc::codegen::CompileOpts::default(),
    )?;
    let defs = syms
        .iter()
        .map(|s| cheri_prof::SymbolDef { name: s.name.to_string(), start: s.start, end: s.end })
        .collect();
    Ok((program, cheri_prof::SymbolTable::new(defs)))
}

/// Compiles and runs `bench` under `strategy` on a fresh kernel/machine,
/// decomposing the run into allocation and computation phases.
///
/// # Errors
///
/// Returns compile errors ([`cheri_cc::CompileError`]) and OS/run errors
/// ([`cheri_os::OsError`]) boxed under one trait object.
pub fn run_bench(
    bench: DslBench,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
    machine: MachineConfig,
) -> Result<BenchRun, Box<dyn std::error::Error>> {
    run_bench_with_sink(bench, params, strategy, machine, None)
}

/// [`run_bench`] with a trace sink attached to the whole stack (kernel,
/// pipeline, caches, tag controller) for the duration of the run. The
/// sink is attached after boot and before `exec`, so the event stream
/// covers exactly the instructions the legacy counters cover.
///
/// # Errors
///
/// As [`run_bench`].
pub fn run_bench_with_sink(
    bench: DslBench,
    params: &OldenParams,
    strategy: &dyn PtrStrategy,
    machine: MachineConfig,
    sink: Option<cheri_trace::SharedSink>,
) -> Result<BenchRun, Box<dyn std::error::Error>> {
    let mut session = BenchSession::start(bench, params, strategy, machine, sink)?;
    Ok(session.run_to_completion()?)
}

/// The runaway guard for benchmark runs: paper-scale bisort retires
/// ~10^10 instructions, so the default [`KernelConfig`] budget (sized
/// for tests) is far too tight.
pub const RUNAWAY_BUDGET: u64 = 200_000_000_000;

/// A benchmark run that can be paused, snapshotted, and resumed.
///
/// [`BenchSession::start`] compiles and execs the workload exactly as
/// [`run_bench_with_sink`] always has (it is now implemented on top of
/// this type); the session then runs to completion in one call, or in
/// pieces via [`BenchSession::run_until_phase`] / [`BenchSession::run_for`]
/// with [`BenchSession::snapshot`] at any stop. A snapshot restored via
/// [`BenchSession::resume`] finishes with results bit-identical to the
/// uninterrupted run — the warm-start sweep mode and the `snapreplay`
/// triage tool are both built on this.
pub struct BenchSession {
    kernel: Kernel,
    mode: &'static str,
}

impl BenchSession {
    /// Compiles `bench` under `strategy`, boots a kernel sized by
    /// `machine`, attaches `sink`, and execs the program — everything up
    /// to (but not including) the first instruction.
    ///
    /// # Errors
    ///
    /// Compile errors and OS exec errors, boxed as in [`run_bench`].
    pub fn start(
        bench: DslBench,
        params: &OldenParams,
        strategy: &dyn PtrStrategy,
        machine: MachineConfig,
        sink: Option<cheri_trace::SharedSink>,
    ) -> Result<BenchSession, Box<dyn std::error::Error>> {
        BenchSession::start_inner(&bench.module(params), strategy, machine, sink, false)
    }

    /// [`BenchSession::start`] for an arbitrary IR module: the session
    /// neither knows nor cares which workload built the module, so any
    /// guest program with the Phase/Print conventions (the `cheri-work`
    /// workloads) runs, snapshots, and resumes exactly like the Olden
    /// four.
    ///
    /// # Errors
    ///
    /// As [`BenchSession::start`].
    pub fn start_module(
        module: &Module,
        strategy: &dyn PtrStrategy,
        machine: MachineConfig,
        sink: Option<cheri_trace::SharedSink>,
    ) -> Result<BenchSession, Box<dyn std::error::Error>> {
        BenchSession::start_inner(module, strategy, machine, sink, false)
    }

    /// [`BenchSession::start_module`] with the symbolized profiler
    /// attached (the module analogue of [`BenchSession::start_profiled`]).
    ///
    /// # Errors
    ///
    /// As [`BenchSession::start`].
    pub fn start_module_profiled(
        module: &Module,
        strategy: &dyn PtrStrategy,
        machine: MachineConfig,
        sink: Option<cheri_trace::SharedSink>,
    ) -> Result<BenchSession, Box<dyn std::error::Error>> {
        BenchSession::start_inner(module, strategy, machine, sink, true)
    }

    /// [`BenchSession::start`] with a [`cheri_prof::Profiler`] attached
    /// (loaded with the workload's symbol table). The profiler goes on
    /// before `exec` on the freshly booted machine, so its attribution
    /// covers every counted event and the per-function sums equal the
    /// final global counters. Collect the result with
    /// [`BenchSession::take_profile`].
    ///
    /// # Errors
    ///
    /// As [`BenchSession::start`].
    pub fn start_profiled(
        bench: DslBench,
        params: &OldenParams,
        strategy: &dyn PtrStrategy,
        machine: MachineConfig,
        sink: Option<cheri_trace::SharedSink>,
    ) -> Result<BenchSession, Box<dyn std::error::Error>> {
        BenchSession::start_inner(&bench.module(params), strategy, machine, sink, true)
    }

    fn start_inner(
        module: &Module,
        strategy: &dyn PtrStrategy,
        machine: MachineConfig,
        sink: Option<cheri_trace::SharedSink>,
        profiled: bool,
    ) -> Result<BenchSession, Box<dyn std::error::Error>> {
        let (program, symbols) = compile_module_with_symbols(module, strategy)?;
        let user_top = (machine.mem_bytes as u64).max(16 << 20) + (16 << 20);
        let layout = cheri_os::ProcessLayout {
            stack_top: user_top - 4096,
            user_top,
            ..cheri_os::ProcessLayout::default()
        };
        let mut kernel = boot(KernelConfig {
            machine,
            layout,
            max_instructions: RUNAWAY_BUDGET,
            ..KernelConfig::default()
        });
        kernel.set_trace_sink(sink);
        if profiled {
            let mut prof = Box::new(cheri_prof::Profiler::new());
            prof.set_symbols(symbols);
            kernel.machine_mut().set_profiler(Some(prof));
        }
        kernel.exec(&program)?;
        Ok(BenchSession { kernel, mode: strategy.name() })
    }

    /// Detaches the profiler (if [`BenchSession::start_profiled`] was
    /// used) and finishes it into a [`cheri_prof::ProfileReport`].
    pub fn take_profile(&mut self) -> Option<cheri_prof::ProfileReport> {
        self.kernel.machine_mut().take_profiler().map(|p| p.into_report())
    }

    /// Resurrects a session from a snapshot alone (no recompilation —
    /// the code image lives in the snapshotted memory). `mode` labels
    /// the resulting [`BenchRun`] and `block_cache` picks the simulator
    /// fast path, which is transparent to all results.
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the snapshot is machine-only or
    /// malformed.
    pub fn resume(
        snap: &cheri_snap::Snapshot,
        mode: &'static str,
        block_cache: bool,
    ) -> Result<BenchSession, cheri_snap::SnapError> {
        let kernel = Kernel::resume(snap, block_cache, RUNAWAY_BUDGET)?;
        Ok(BenchSession { kernel, mode })
    }

    /// Captures the complete machine + kernel state.
    #[must_use]
    pub fn snapshot(&self) -> cheri_snap::Snapshot {
        self.kernel.snapshot()
    }

    /// The kernel this session runs on.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Runs to process exit and decomposes the outcome into phases.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run`].
    pub fn run_to_completion(&mut self) -> Result<BenchRun, OsError> {
        let outcome = self.kernel.run()?;
        Ok(self.finish(outcome))
    }

    /// Runs until the workload issues `SYS_PHASE phase_id`, the natural
    /// warm-start snapshot boundary (`Ok(None)`, still live), or to
    /// completion if the phase never arrives (`Ok(Some(run))`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::run_until_phase`].
    pub fn run_until_phase(&mut self, phase_id: u64) -> Result<Option<BenchRun>, OsError> {
        let out = self.kernel.run_until_phase(phase_id)?;
        Ok(out.map(|o| self.finish(o)))
    }

    /// Runs for exactly `steps` retired instructions (`Ok(None)`, still
    /// live) or to completion if it exits first (`Ok(Some(run))`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::run_for`].
    pub fn run_for(&mut self, steps: u64) -> Result<Option<BenchRun>, OsError> {
        let out = self.kernel.run_for(steps)?;
        Ok(out.map(|o| self.finish(o)))
    }

    fn finish(&self, outcome: RunOutcome) -> BenchRun {
        let heap_used = self.kernel.heap_used().unwrap_or(0);
        finish_run(self.mode, outcome, heap_used)
    }
}

/// Splits an outcome into phase statistics.
#[must_use]
pub fn finish_run(mode: &'static str, outcome: RunOutcome, heap_used: u64) -> BenchRun {
    let at = |id: u64| outcome.phases.iter().find(|p| p.id == id).map(|p| p.stats);
    let p1 = at(1).unwrap_or_default();
    let p2 = at(2).unwrap_or(outcome.stats);
    let p3 = at(3).unwrap_or(outcome.stats);
    BenchRun {
        mode,
        outcome: outcome.clone(),
        alloc: p2.since(&p1),
        compute: p3.since(&p2),
        heap_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::strategy::{CapPtr, LegacyPtr, SoftFatPtr};
    use cheri_os::ExitReason;

    fn cfg(bench: DslBench, p: &OldenParams, s: &dyn PtrStrategy) -> MachineConfig {
        MachineConfig { mem_bytes: bench.mem_needed(p, s), ..MachineConfig::default() }
    }

    /// All four benchmarks produce identical checksums under all three
    /// compilation modes — the core cross-mode validity property of the
    /// Figure 4 experiment.
    #[test]
    fn checksums_agree_across_modes() {
        let p = OldenParams::scaled();
        for bench in DslBench::ALL {
            let mut sums: Vec<Vec<u64>> = Vec::new();
            let strategies: [&dyn PtrStrategy; 3] =
                [&LegacyPtr, &SoftFatPtr::checked(), &CapPtr::c256()];
            for s in strategies {
                let run = run_bench(bench, &p, s, cfg(bench, &p, s))
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), s.name()));
                assert!(
                    matches!(run.outcome.exit, ExitReason::Exit(_)),
                    "{} [{}] exited {:?}",
                    bench.name(),
                    s.name(),
                    run.outcome.exit
                );
                sums.push(run.checksums().to_vec());
            }
            assert!(!sums[0].is_empty(), "{} printed nothing", bench.name());
            assert_eq!(sums[0], sums[1], "{}: mips vs ccured", bench.name());
            assert_eq!(sums[0], sums[2], "{}: mips vs cheri", bench.name());
        }
    }

    #[test]
    fn bisort_sorts() {
        let p = OldenParams::scaled();
        let run =
            run_bench(DslBench::Bisort, &p, &LegacyPtr, cfg(DslBench::Bisort, &p, &LegacyPtr))
                .unwrap();
        // First print: violation count (0 = sorted); then the leaf sums
        // before/after, which must match.
        let sums = run.checksums();
        assert_eq!(sums[0], 0, "bisort produced an unsorted tree");
        assert_eq!(sums[1], sums[2], "sort must preserve the multiset of values");
    }

    #[test]
    fn phases_are_recorded() {
        let p = OldenParams::scaled();
        let run =
            run_bench(DslBench::Treeadd, &p, &LegacyPtr, cfg(DslBench::Treeadd, &p, &LegacyPtr))
                .unwrap();
        assert!(run.alloc.instructions > 0, "allocation phase missing");
        assert!(run.compute.instructions > 0, "computation phase missing");
        assert!(run.total_cycles() > 0);
    }

    #[test]
    fn cheri_total_overhead_is_moderate_on_treeadd() {
        // Figure 4: treeadd CHERI total overhead is tens of percent,
        // while CCured-style checking costs much more.
        let p = OldenParams::scaled().with_treeadd_depth(13);
        let runs: Vec<BenchRun> = {
            let strategies: [&dyn PtrStrategy; 3] =
                [&LegacyPtr, &SoftFatPtr::checked(), &CapPtr::c256()];
            strategies
                .iter()
                .map(|s| {
                    run_bench(DslBench::Treeadd, &p, *s, cfg(DslBench::Treeadd, &p, *s)).unwrap()
                })
                .collect()
        };
        let base = runs[0].total_cycles() as f64;
        let ccured = runs[1].total_cycles() as f64 / base;
        let cheri = runs[2].total_cycles() as f64 / base;
        assert!(cheri < ccured, "CHERI ({cheri}) must beat CCured ({ccured})");
        assert!(cheri < 2.0, "CHERI overhead should stay moderate: {cheri}");
    }

    /// The compressed 128-bit format (16-byte machine granule) computes
    /// the same results as the 256-bit research format with strictly
    /// less memory traffic — the Section 8 compression conclusion.
    #[test]
    fn cap128_matches_cap256_with_less_traffic() {
        let p = OldenParams::scaled();
        for bench in [DslBench::Treeadd, DslBench::Bisort] {
            let mut runs = Vec::new();
            for s in [&CapPtr::c256() as &dyn PtrStrategy, &CapPtr::c128()] {
                let cfg = machine_config(bench, &p, s);
                runs.push(run_bench(bench, &p, s, cfg).unwrap());
            }
            assert_eq!(
                runs[0].checksums(),
                runs[1].checksums(),
                "{}: 128-bit result differs",
                bench.name()
            );
            assert!(
                runs[1].outcome.stats.memory_bytes() < runs[0].outcome.stats.memory_bytes(),
                "{}: compression must reduce traffic",
                bench.name()
            );
            assert!(
                runs[1].total_cycles() < runs[0].total_cycles(),
                "{}: compression must reduce cycles",
                bench.name()
            );
        }
    }

    #[test]
    fn mem_needed_scales_with_strategy() {
        let p = OldenParams::paper();
        assert!(
            DslBench::Treeadd.mem_needed(&p, &CapPtr::c256())
                > DslBench::Treeadd.mem_needed(&p, &LegacyPtr)
        );
    }
}
