//! `perimeter`: quadtree image perimeter.
//!
//! A `2^levels × 2^levels` binary image of a disc is built as a quadtree
//! (uniform quadrants collapse to leaves), and the perimeter of the black
//! region is computed by divide and conquer: a node's perimeter is the
//! sum of its children's perimeters minus twice the black–black contact
//! along the four internal edges — computed by recursive edge matching,
//! the same neighbour-pairing workload as the Olden original.

use cheri_cc::ir::build::*;
use cheri_cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};

const COLOR: usize = 0; // 0 white, 1 black, 2 grey
const NW: usize = 1;
const NE: usize = 2;
const SW: usize = 3;
const SE: usize = 4;

/// Builds the `perimeter` module for a `2^levels`-pixel-square image.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn module(levels: u32) -> Module {
    let qt = 0usize;
    let (classify, build, perim, contact, main) = (0usize, 1, 2, 3, 4);

    // classify(x, y, s, cx, cy, r2) -> 0 all-outside / 1 all-inside /
    // 2 mixed, for the square [x, x+s) x [y, y+s) against the disc.
    let classify_fn = FuncDef {
        name: "classify",
        params: 6,
        ret: Some(Ty::I64),
        // locals: x y s cx cy r2 | nx ny dx dy d2 t
        locals: vec![
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
        ],
        body: vec![
            // Single pixels are classified by their own corner distance
            // (never "mixed").
            Stmt::If {
                cond: cmp(CmpOp::Eq, l(2), c(1)),
                then: vec![
                    Stmt::Let(8, sub(l(0), l(3))),
                    Stmt::Let(9, sub(l(1), l(4))),
                    Stmt::Let(10, add(mul(l(8), l(8)), mul(l(9), l(9)))),
                    Stmt::Return(Some(cmp(CmpOp::Le, l(10), l(5)))),
                ],
                els: vec![],
            },
            // nearest point of the square to the centre: clamp.
            Stmt::Let(6, l(3)),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(6), l(0)),
                then: vec![Stmt::Let(6, l(0))],
                els: vec![],
            },
            Stmt::Let(11, add(l(0), l(2))),
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(6), l(11)),
                then: vec![Stmt::Let(6, l(11))],
                els: vec![],
            },
            Stmt::Let(7, l(4)),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(7), l(1)),
                then: vec![Stmt::Let(7, l(1))],
                els: vec![],
            },
            Stmt::Let(11, add(l(1), l(2))),
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(7), l(11)),
                then: vec![Stmt::Let(7, l(11))],
                els: vec![],
            },
            Stmt::Let(8, sub(l(6), l(3))),
            Stmt::Let(9, sub(l(7), l(4))),
            Stmt::Let(10, add(mul(l(8), l(8)), mul(l(9), l(9)))),
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(10), l(5)),
                then: vec![Stmt::Return(Some(c(0)))], // entirely outside
                els: vec![],
            },
            // farthest corner: max(|x-cx|, |x+s-cx|), same for y.
            Stmt::Let(8, sub(l(0), l(3))),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(8), c(0)),
                then: vec![Stmt::Let(8, sub(c(0), l(8)))],
                els: vec![],
            },
            Stmt::Let(11, sub(add(l(0), l(2)), l(3))),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(11), c(0)),
                then: vec![Stmt::Let(11, sub(c(0), l(11)))],
                els: vec![],
            },
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(11), l(8)),
                then: vec![Stmt::Let(8, l(11))],
                els: vec![],
            },
            Stmt::Let(9, sub(l(1), l(4))),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(9), c(0)),
                then: vec![Stmt::Let(9, sub(c(0), l(9)))],
                els: vec![],
            },
            Stmt::Let(11, sub(add(l(1), l(2)), l(4))),
            Stmt::If {
                cond: cmp(CmpOp::Lt, l(11), c(0)),
                then: vec![Stmt::Let(11, sub(c(0), l(11)))],
                els: vec![],
            },
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(11), l(9)),
                then: vec![Stmt::Let(9, l(11))],
                els: vec![],
            },
            Stmt::Let(10, add(mul(l(8), l(8)), mul(l(9), l(9)))),
            Stmt::If {
                cond: cmp(CmpOp::Le, l(10), l(5)),
                then: vec![Stmt::Return(Some(c(1)))], // entirely inside
                els: vec![],
            },
            Stmt::Return(Some(c(2))),
        ],
    };

    // build(x, y, s, cx, cy, r2) -> quadtree node.
    let build_fn = FuncDef {
        name: "build",
        params: 6,
        ret: Some(Ty::ptr(qt)),
        // locals: x y s cx cy r2 | cls n tmp h
        locals: vec![
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::ptr(qt),
            Ty::ptr(qt),
            Ty::I64,
        ],
        body: vec![
            Stmt::Let(6, call(classify, vec![l(0), l(1), l(2), l(3), l(4), l(5)])),
            Stmt::Let(7, alloc(qt, c(1))),
            Stmt::Store { ptr: l(7), strukt: qt, field: COLOR, value: l(6) },
            Stmt::If {
                cond: cmp(CmpOp::Eq, l(6), c(2)),
                then: vec![
                    Stmt::Let(9, shr(l(2), c(1))),
                    Stmt::Let(8, call(build, vec![l(0), l(1), l(9), l(3), l(4), l(5)])),
                    Stmt::StorePtr { ptr: l(7), strukt: qt, field: NW, value: l(8) },
                    Stmt::Let(8, call(build, vec![add(l(0), l(9)), l(1), l(9), l(3), l(4), l(5)])),
                    Stmt::StorePtr { ptr: l(7), strukt: qt, field: NE, value: l(8) },
                    Stmt::Let(8, call(build, vec![l(0), add(l(1), l(9)), l(9), l(3), l(4), l(5)])),
                    Stmt::StorePtr { ptr: l(7), strukt: qt, field: SW, value: l(8) },
                    Stmt::Let(
                        8,
                        call(build, vec![add(l(0), l(9)), add(l(1), l(9)), l(9), l(3), l(4), l(5)]),
                    ),
                    Stmt::StorePtr { ptr: l(7), strukt: qt, field: SE, value: l(8) },
                ],
                els: vec![],
            },
            Stmt::Return(Some(l(7))),
        ],
    };

    // contact(a, b, s, dir): black-black border length between sibling
    // squares of size s; dir 0 = a left of b (vertical edge),
    // dir 1 = a above b (horizontal edge). A black leaf stands in for
    // both of its virtual children.
    let contact_fn = FuncDef {
        name: "contact",
        params: 4,
        ret: Some(Ty::I64),
        // locals: a b s dir | aa bb x h
        locals: vec![
            Ty::ptr(qt),
            Ty::ptr(qt),
            Ty::I64,
            Ty::I64,
            Ty::ptr(qt),
            Ty::ptr(qt),
            Ty::I64,
            Ty::I64,
        ],
        body: vec![
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(0)),
                then: vec![Stmt::Return(Some(c(0)))],
                els: vec![],
            },
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(1), qt, COLOR), c(0)),
                then: vec![Stmt::Return(Some(c(0)))],
                els: vec![],
            },
            Stmt::If {
                cond: band(
                    cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(1)),
                    cmp(CmpOp::Eq, load(l(1), qt, COLOR), c(1)),
                ),
                then: vec![Stmt::Return(Some(l(2)))],
                els: vec![],
            },
            Stmt::Let(7, shr(l(2), c(1))),
            // First pair along the shared edge.
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(2)),
                then: vec![Stmt::If {
                    cond: cmp(CmpOp::Eq, l(3), c(0)),
                    then: vec![Stmt::Let(4, loadp(l(0), qt, NE))],
                    els: vec![Stmt::Let(4, loadp(l(0), qt, SW))],
                }],
                els: vec![Stmt::Let(4, l(0))],
            },
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(1), qt, COLOR), c(2)),
                then: vec![Stmt::If {
                    cond: cmp(CmpOp::Eq, l(3), c(0)),
                    then: vec![Stmt::Let(5, loadp(l(1), qt, NW))],
                    els: vec![Stmt::Let(5, loadp(l(1), qt, NW))],
                }],
                els: vec![Stmt::Let(5, l(1))],
            },
            Stmt::Let(6, call(contact, vec![l(4), l(5), l(7), l(3)])),
            // Second pair.
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(2)),
                then: vec![Stmt::If {
                    cond: cmp(CmpOp::Eq, l(3), c(0)),
                    then: vec![Stmt::Let(4, loadp(l(0), qt, SE))],
                    els: vec![Stmt::Let(4, loadp(l(0), qt, SE))],
                }],
                els: vec![Stmt::Let(4, l(0))],
            },
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(1), qt, COLOR), c(2)),
                then: vec![Stmt::If {
                    cond: cmp(CmpOp::Eq, l(3), c(0)),
                    then: vec![Stmt::Let(5, loadp(l(1), qt, SW))],
                    els: vec![Stmt::Let(5, loadp(l(1), qt, NE))],
                }],
                els: vec![Stmt::Let(5, l(1))],
            },
            Stmt::Let(7, call(contact, vec![l(4), l(5), shr(l(2), c(1)), l(3)])),
            Stmt::Return(Some(add(l(6), l(7)))),
        ],
    };

    // perim(p, s): perimeter of the black region under p.
    let perim_fn = FuncDef {
        name: "perim",
        params: 2,
        ret: Some(Ty::I64),
        // locals: p s | acc t h
        locals: vec![Ty::ptr(qt), Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        body: vec![
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(0)),
                then: vec![Stmt::Return(Some(c(0)))],
                els: vec![],
            },
            Stmt::If {
                cond: cmp(CmpOp::Eq, load(l(0), qt, COLOR), c(1)),
                then: vec![Stmt::Return(Some(mul(c(4), l(1))))],
                els: vec![],
            },
            Stmt::Let(4, shr(l(1), c(1))),
            Stmt::Let(2, c(0)),
            Stmt::Let(3, call(perim, vec![loadp(l(0), qt, NW), l(4)])),
            Stmt::Let(2, add(l(2), l(3))),
            Stmt::Let(3, call(perim, vec![loadp(l(0), qt, NE), l(4)])),
            Stmt::Let(2, add(l(2), l(3))),
            Stmt::Let(3, call(perim, vec![loadp(l(0), qt, SW), l(4)])),
            Stmt::Let(2, add(l(2), l(3))),
            Stmt::Let(3, call(perim, vec![loadp(l(0), qt, SE), l(4)])),
            Stmt::Let(2, add(l(2), l(3))),
            // Subtract the internal black-black contacts twice.
            Stmt::Let(3, call(contact, vec![loadp(l(0), qt, NW), loadp(l(0), qt, NE), l(4), c(0)])),
            Stmt::Let(2, sub(l(2), mul(c(2), l(3)))),
            Stmt::Let(3, call(contact, vec![loadp(l(0), qt, SW), loadp(l(0), qt, SE), l(4), c(0)])),
            Stmt::Let(2, sub(l(2), mul(c(2), l(3)))),
            Stmt::Let(3, call(contact, vec![loadp(l(0), qt, NW), loadp(l(0), qt, SW), l(4), c(1)])),
            Stmt::Let(2, sub(l(2), mul(c(2), l(3)))),
            Stmt::Let(3, call(contact, vec![loadp(l(0), qt, NE), loadp(l(0), qt, SE), l(4), c(1)])),
            Stmt::Let(2, sub(l(2), mul(c(2), l(3)))),
            Stmt::Return(Some(l(2))),
        ],
    };

    let size = 1i64 << levels;
    let centre = size / 2;
    let radius = size * 3 / 8;
    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        locals: vec![Ty::ptr(qt), Ty::I64],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(
                0,
                call(build, vec![c(0), c(0), c(size), c(centre), c(centre), c(radius * radius)]),
            ),
            Stmt::Phase(2),
            Stmt::Let(1, call(perim, vec![l(0), c(size)])),
            Stmt::Phase(3),
            Stmt::Print(l(1)),
            Stmt::Return(Some(l(1))),
        ],
    };

    Module {
        structs: vec![StructDef {
            name: "qt",
            fields: vec![Ty::I64, Ty::ptr(qt), Ty::ptr(qt), Ty::ptr(qt), Ty::ptr(qt)],
        }],
        funcs: vec![classify_fn, build_fn, perim_fn, contact_fn, main_fn],
        entry: main,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check as validate, Limits};
    use cheri_cc::strategy::LegacyPtr;

    #[test]
    fn module_checks() {
        validate(&module(5), Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    fn run(levels: u32) -> u64 {
        let prog = cheri_cc::compile(&module(levels), &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        k.exec_and_run(&prog).unwrap().exit_value().expect("clean exit")
    }

    /// Brute-force perimeter of the same disc for cross-checking.
    fn brute(levels: u32) -> u64 {
        let size = 1i64 << levels;
        let (cx, cy) = (size / 2, size / 2);
        let r2 = (size * 3 / 8) * (size * 3 / 8);
        let inside = |x: i64, y: i64| {
            if x < 0 || y < 0 || x >= size || y >= size {
                return false;
            }
            // Matches classify() on a 1x1 cell: the pixel's own corner
            // distance decides membership.
            (x - cx) * (x - cx) + (y - cy) * (y - cy) <= r2
        };
        let mut p = 0u64;
        for x in 0..size {
            for y in 0..size {
                if inside(x, y) {
                    for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                        if !inside(x + dx, y + dy) {
                            p += 1;
                        }
                    }
                }
            }
        }
        p
    }

    #[test]
    fn perimeter_matches_brute_force() {
        for levels in [3u32, 4, 5] {
            assert_eq!(run(levels), brute(levels), "levels={levels}");
        }
    }
}
