//! `mst`: minimum spanning tree over a pseudo-random graph whose
//! adjacency lists live in per-vertex hash tables — the Olden workload
//! whose "two contiguous allocations to build the graph and a linear
//! read" pattern Section 8 discusses.
//!
//! The graph has `n` vertices connected in a guaranteed spanning chain
//! plus `degree` extra pseudo-random edges per vertex; Prim's algorithm
//! computes the MST cost, relaxing each extracted vertex's neighbours by
//! walking its hash buckets (keys are neighbour addresses via
//! `PtrToInt`, i.e. `CToPtr` under CHERI).

use cheri_cc::ir::build::*;
use cheri_cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};

// struct indices
const VERTEX: usize = 0;
const BUCKET: usize = 1;
const ENTRY: usize = 2;
const VREF: usize = 3;

// vertex fields
const MINDIST: usize = 0;
const INTREE: usize = 1;
const HASH: usize = 2;
// bucket fields
const HEAD: usize = 0;
// entry fields
const WEIGHT: usize = 0;
const KEY: usize = 1;
const NEIGH: usize = 2;
const NEXT: usize = 3;
// vref fields
const V: usize = 0;

/// Buckets per vertex hash table.
const NBUCKETS: i64 = 16;
/// "Infinite" distance.
const INF: i64 = 1 << 40;

/// Builds the `mst` module for `n` vertices with `degree` extra edges
/// per vertex.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn module(n: u32, degree: u32) -> Module {
    let (scramble, weightof, insert, pair, genverts, addedges, prim, main) =
        (0usize, 1, 2, 3, 4, 5, 6, 7);
    let n = i64::from(n);
    let degree = i64::from(degree);

    let scramble_fn = FuncDef {
        name: "scramble",
        params: 1,
        ret: Some(Ty::I64),
        locals: vec![Ty::I64, Ty::I64],
        body: vec![
            Stmt::Let(1, mul(add(l(0), c(0x5851_F42D)), c(0x5851F42D4C957F2Du64 as i64))),
            Stmt::Let(1, bxor(l(1), shr(l(1), c(33)))),
            Stmt::Let(1, mul(l(1), c(0xD6E8_FEB8))),
            Stmt::Return(Some(band(bxor(l(1), shr(l(1), c(27))), c(0x7fff_ffff)))),
        ],
    };

    // weightof(i, j): symmetric deterministic edge weight in 1..=1000.
    let weightof_fn = FuncDef {
        name: "weightof",
        params: 2,
        ret: Some(Ty::I64),
        // locals: i j | a b t
        locals: vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        body: vec![
            Stmt::Let(2, l(0)),
            Stmt::Let(3, l(1)),
            Stmt::If {
                cond: cmp(CmpOp::Gt, l(2), l(3)),
                then: vec![Stmt::Let(4, l(2)), Stmt::Let(2, l(3)), Stmt::Let(3, l(4))],
                els: vec![],
            },
            Stmt::Let(4, call(scramble, vec![add(mul(l(2), c(n)), l(3))])),
            Stmt::Return(Some(add(urem(l(4), c(1000)), c(1)))),
        ],
    };

    // insert(tab, key, w, neigh): push an entry on the key's bucket.
    let insert_fn = FuncDef {
        name: "insert",
        params: 4,
        ret: None,
        // locals: tab key w neigh | h e tmp
        locals: vec![
            Ty::ptr(BUCKET),
            Ty::I64,
            Ty::I64,
            Ty::ptr(VERTEX),
            Ty::I64,
            Ty::ptr(ENTRY),
            Ty::ptr(ENTRY),
        ],
        body: vec![
            Stmt::Let(4, urem(shr(l(1), c(4)), c(NBUCKETS))),
            Stmt::Let(5, alloc(ENTRY, c(1))),
            Stmt::Store { ptr: l(5), strukt: ENTRY, field: WEIGHT, value: l(2) },
            Stmt::Store { ptr: l(5), strukt: ENTRY, field: KEY, value: l(1) },
            Stmt::StorePtr { ptr: l(5), strukt: ENTRY, field: NEIGH, value: l(3) },
            Stmt::Let(6, loadp(index(l(0), BUCKET, l(4)), BUCKET, HEAD)),
            Stmt::StorePtr { ptr: l(5), strukt: ENTRY, field: NEXT, value: l(6) },
            Stmt::StorePtr {
                ptr: index(l(0), BUCKET, l(4)),
                strukt: BUCKET,
                field: HEAD,
                value: l(5),
            },
        ],
    };

    // pair(varr, i, j): add the undirected edge (i, j).
    let pair_fn = FuncDef {
        name: "pair",
        params: 3,
        ret: None,
        // locals: varr i j | v w wt
        locals: vec![Ty::ptr(VREF), Ty::I64, Ty::I64, Ty::ptr(VERTEX), Ty::ptr(VERTEX), Ty::I64],
        body: vec![
            Stmt::Let(3, loadp(index(l(0), VREF, l(1)), VREF, V)),
            Stmt::Let(4, loadp(index(l(0), VREF, l(2)), VREF, V)),
            Stmt::Let(5, call(weightof, vec![l(1), l(2)])),
            Stmt::Expr(call(insert, vec![loadp(l(3), VERTEX, HASH), ptoi(l(4)), l(5), l(4)])),
            Stmt::Expr(call(insert, vec![loadp(l(4), VERTEX, HASH), ptoi(l(3)), l(5), l(3)])),
        ],
    };

    // genverts(varr): allocate every vertex and its hash table.
    let genverts_fn = FuncDef {
        name: "genverts",
        params: 1,
        ret: None,
        // locals: varr | i v tab
        locals: vec![Ty::ptr(VREF), Ty::I64, Ty::ptr(VERTEX), Ty::ptr(BUCKET)],
        body: vec![
            Stmt::Let(1, c(0)),
            Stmt::While {
                cond: cmp(CmpOp::Lt, l(1), c(n)),
                body: vec![
                    Stmt::Let(2, alloc(VERTEX, c(1))),
                    Stmt::Let(3, alloc(BUCKET, c(NBUCKETS))),
                    Stmt::Store { ptr: l(2), strukt: VERTEX, field: MINDIST, value: c(INF) },
                    Stmt::Store { ptr: l(2), strukt: VERTEX, field: INTREE, value: c(0) },
                    Stmt::StorePtr { ptr: l(2), strukt: VERTEX, field: HASH, value: l(3) },
                    Stmt::StorePtr {
                        ptr: index(l(0), VREF, l(1)),
                        strukt: VREF,
                        field: V,
                        value: l(2),
                    },
                    Stmt::Let(1, add(l(1), c(1))),
                ],
            },
        ],
    };

    // addedges(varr): spanning chain + `degree` pseudo-random edges per
    // vertex.
    let addedges_fn = FuncDef {
        name: "addedges",
        params: 1,
        ret: None,
        // locals: varr | i k t j
        locals: vec![Ty::ptr(VREF), Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        body: vec![
            Stmt::Let(1, c(0)),
            Stmt::While {
                cond: cmp(CmpOp::Lt, l(1), c(n - 1)),
                body: vec![
                    Stmt::Expr(call(pair, vec![l(0), l(1), add(l(1), c(1))])),
                    Stmt::Let(1, add(l(1), c(1))),
                ],
            },
            Stmt::Let(1, c(0)),
            Stmt::While {
                cond: cmp(CmpOp::Lt, l(1), c(n)),
                body: vec![
                    Stmt::Let(2, c(0)),
                    Stmt::While {
                        cond: cmp(CmpOp::Lt, l(2), c(degree)),
                        body: vec![
                            Stmt::Let(
                                3,
                                call(scramble, vec![add(mul(l(1), c(degree)), add(l(2), c(7)))]),
                            ),
                            Stmt::Let(4, urem(l(3), c(n))),
                            Stmt::If {
                                cond: cmp(CmpOp::Ne, l(4), l(1)),
                                then: vec![Stmt::Expr(call(pair, vec![l(0), l(1), l(4)]))],
                                els: vec![],
                            },
                            Stmt::Let(2, add(l(2), c(1))),
                        ],
                    },
                    Stmt::Let(1, add(l(1), c(1))),
                ],
            },
        ],
    };

    // prim(varr) -> MST cost.
    let prim_fn = FuncDef {
        name: "prim",
        params: 1,
        ret: Some(Ty::I64),
        // locals: varr | step i cost best bv v bi e nv wt
        locals: vec![
            Ty::ptr(VREF),   // 0
            Ty::I64,         // 1 step
            Ty::I64,         // 2 i
            Ty::I64,         // 3 cost
            Ty::I64,         // 4 best
            Ty::ptr(VERTEX), // 5 bv
            Ty::ptr(VERTEX), // 6 v
            Ty::I64,         // 7 bi
            Ty::ptr(ENTRY),  // 8 e
            Ty::ptr(VERTEX), // 9 nv
            Ty::I64,         // 10 wt
        ],
        body: vec![
            // varr[0].mindist = 0
            Stmt::Let(6, loadp(index(l(0), VREF, c(0)), VREF, V)),
            Stmt::Store { ptr: l(6), strukt: VERTEX, field: MINDIST, value: c(0) },
            Stmt::Let(3, c(0)),
            Stmt::Let(1, c(0)),
            Stmt::While {
                cond: cmp(CmpOp::Lt, l(1), c(n)),
                body: vec![
                    // Linear scan for the closest out-of-tree vertex.
                    Stmt::Let(4, c(INF + 1)),
                    Stmt::Let(5, Expr::Null(VERTEX)),
                    Stmt::Let(2, c(0)),
                    Stmt::While {
                        cond: cmp(CmpOp::Lt, l(2), c(n)),
                        body: vec![
                            Stmt::Let(6, loadp(index(l(0), VREF, l(2)), VREF, V)),
                            Stmt::If {
                                cond: cmp(CmpOp::Eq, load(l(6), VERTEX, INTREE), c(0)),
                                then: vec![Stmt::If {
                                    cond: cmp(CmpOp::Lt, load(l(6), VERTEX, MINDIST), l(4)),
                                    then: vec![
                                        Stmt::Let(4, load(l(6), VERTEX, MINDIST)),
                                        Stmt::Let(5, l(6)),
                                    ],
                                    els: vec![],
                                }],
                                els: vec![],
                            },
                            Stmt::Let(2, add(l(2), c(1))),
                        ],
                    },
                    Stmt::Store { ptr: l(5), strukt: VERTEX, field: INTREE, value: c(1) },
                    Stmt::Let(3, add(l(3), l(4))),
                    // Relax the extracted vertex's neighbours.
                    Stmt::Let(7, c(0)),
                    Stmt::While {
                        cond: cmp(CmpOp::Lt, l(7), c(NBUCKETS)),
                        body: vec![
                            Stmt::Let(
                                8,
                                loadp(index(loadp(l(5), VERTEX, HASH), BUCKET, l(7)), BUCKET, HEAD),
                            ),
                            Stmt::While {
                                cond: cmp(CmpOp::Eq, is_null(l(8)), c(0)),
                                body: vec![
                                    Stmt::Let(9, loadp(l(8), ENTRY, NEIGH)),
                                    Stmt::If {
                                        cond: cmp(CmpOp::Eq, load(l(9), VERTEX, INTREE), c(0)),
                                        then: vec![
                                            Stmt::Let(10, load(l(8), ENTRY, WEIGHT)),
                                            Stmt::If {
                                                cond: cmp(
                                                    CmpOp::Lt,
                                                    l(10),
                                                    load(l(9), VERTEX, MINDIST),
                                                ),
                                                then: vec![Stmt::Store {
                                                    ptr: l(9),
                                                    strukt: VERTEX,
                                                    field: MINDIST,
                                                    value: l(10),
                                                }],
                                                els: vec![],
                                            },
                                        ],
                                        els: vec![],
                                    },
                                    Stmt::Let(8, loadp(l(8), ENTRY, NEXT)),
                                ],
                            },
                            Stmt::Let(7, add(l(7), c(1))),
                        ],
                    },
                    Stmt::Let(1, add(l(1), c(1))),
                ],
            },
            Stmt::Return(Some(l(3))),
        ],
    };

    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        locals: vec![Ty::ptr(VREF), Ty::I64],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(0, alloc(VREF, c(n))),
            Stmt::Expr(call(genverts, vec![l(0)])),
            Stmt::Expr(call(addedges, vec![l(0)])),
            Stmt::Phase(2),
            Stmt::Let(1, call(prim, vec![l(0)])),
            Stmt::Phase(3),
            Stmt::Print(l(1)),
            Stmt::Return(Some(l(1))),
        ],
    };

    Module {
        structs: vec![
            StructDef { name: "vertex", fields: vec![Ty::I64, Ty::I64, Ty::ptr(BUCKET)] },
            StructDef { name: "bucket", fields: vec![Ty::ptr(ENTRY)] },
            StructDef {
                name: "entry",
                fields: vec![Ty::I64, Ty::I64, Ty::ptr(VERTEX), Ty::ptr(ENTRY)],
            },
            StructDef { name: "vref", fields: vec![Ty::ptr(VERTEX)] },
        ],
        funcs: vec![
            scramble_fn,
            weightof_fn,
            insert_fn,
            pair_fn,
            genverts_fn,
            addedges_fn,
            prim_fn,
            main_fn,
        ],
        entry: main,
    }
}

use cheri_cc::ir::Expr;

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check as validate, Limits};
    use cheri_cc::strategy::LegacyPtr;

    #[test]
    fn module_checks() {
        validate(&module(16, 3), Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    #[test]
    fn mst_cost_is_positive_and_bounded() {
        let prog = cheri_cc::compile(&module(24, 4), &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        let cost = out.exit_value().expect("clean exit");
        // 23 tree edges of weight 1..=1000.
        assert!(cost >= 23, "cost {cost}");
        assert!(cost <= 23 * 1000, "cost {cost}");
    }
}
