//! `treeadd`: build a binary tree of the given depth, then sum it
//! recursively. "Due to the similar data structure used, treeadd has
//! comparable performance profile to bisort" (Section 8).

use cheri_cc::ir::build::*;
use cheri_cc::ir::{FuncDef, Module, Stmt, StructDef, Ty};

/// Field indices of `node { val, left, right }`.
const VAL: usize = 0;
/// Left child.
const LEFT: usize = 1;
/// Right child.
const RIGHT: usize = 2;

/// Builds the `treeadd` module for a tree of `depth` levels
/// (`2^depth - 1` nodes, each holding the value 1, as
/// `treeadd 21 1 0` does).
#[must_use]
pub fn module(depth: u32) -> Module {
    let node = 0usize;
    let build = 0usize;
    let sum = 1usize;
    let main = 2usize;

    let build_fn = FuncDef {
        name: "build",
        params: 1,
        ret: Some(Ty::ptr(node)),
        // locals: depth, n, tmp
        locals: vec![Ty::I64, Ty::ptr(node), Ty::ptr(node)],
        body: vec![
            Stmt::If {
                cond: cmp(cheri_cc::ir::CmpOp::Le, l(0), c(0)),
                then: vec![Stmt::Return(Some(Expr::Null(node)))],
                els: vec![],
            },
            Stmt::Let(1, alloc(node, c(1))),
            Stmt::Store { ptr: l(1), strukt: node, field: VAL, value: c(1) },
            Stmt::Let(2, call(build, vec![sub(l(0), c(1))])),
            Stmt::StorePtr { ptr: l(1), strukt: node, field: LEFT, value: l(2) },
            Stmt::Let(2, call(build, vec![sub(l(0), c(1))])),
            Stmt::StorePtr { ptr: l(1), strukt: node, field: RIGHT, value: l(2) },
            Stmt::Return(Some(l(1))),
        ],
    };

    let sum_fn = FuncDef {
        name: "sum",
        params: 1,
        ret: Some(Ty::I64),
        // locals: p, a, b
        locals: vec![Ty::ptr(node), Ty::I64, Ty::I64],
        body: vec![
            Stmt::If { cond: is_null(l(0)), then: vec![Stmt::Return(Some(c(0)))], els: vec![] },
            Stmt::Let(1, call(sum, vec![loadp(l(0), node, LEFT)])),
            Stmt::Let(2, call(sum, vec![loadp(l(0), node, RIGHT)])),
            Stmt::Return(Some(add(load(l(0), node, VAL), add(l(1), l(2))))),
        ],
    };

    let main_fn = FuncDef {
        name: "main",
        params: 0,
        ret: Some(Ty::I64),
        // locals: tree, result
        locals: vec![Ty::ptr(node), Ty::I64],
        body: vec![
            Stmt::Phase(1),
            Stmt::Let(0, call(build, vec![c(i64::from(depth))])),
            Stmt::Phase(2),
            Stmt::Let(1, call(sum, vec![l(0)])),
            Stmt::Phase(3),
            Stmt::Print(l(1)),
            Stmt::Return(Some(l(1))),
        ],
    };

    Module {
        structs: vec![StructDef {
            name: "node",
            fields: vec![Ty::I64, Ty::ptr(node), Ty::ptr(node)],
        }],
        funcs: vec![build_fn, sum_fn, main_fn],
        entry: main,
    }
}

use cheri_cc::ir::Expr;

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cc::check::{check, Limits};

    #[test]
    fn module_checks() {
        let m = module(5);
        check(&m, Limits { max_int: 6, max_ptr: 3 }).unwrap();
    }

    #[test]
    fn sum_is_node_count() {
        use cheri_cc::strategy::LegacyPtr;
        let m = module(6);
        let prog = cheri_cc::compile(&m, &LegacyPtr, Default::default()).unwrap();
        let mut k = cheri_os::boot(Default::default());
        let out = k.exec_and_run(&prog).unwrap();
        assert_eq!(out.exit_value(), Some(63)); // 2^6 - 1 nodes of value 1
        assert_eq!(out.prints, vec![63]);
    }
}
