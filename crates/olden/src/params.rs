//! Benchmark problem sizes.

/// Problem sizes for the Olden workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OldenParams {
    /// `treeadd` tree depth (paper: `treeadd 21 1 0`).
    pub treeadd_depth: u32,
    /// `bisort`: log2 of the number of sorted values (paper:
    /// `bisort 250000` ≈ 2^18).
    pub bisort_log2: u32,
    /// `perimeter`: quadtree levels (paper: `perimeter 12`).
    pub perimeter_levels: u32,
    /// `mst` vertex count (paper: `mst 1024`).
    pub mst_vertices: u32,
    /// `mst`: extra pseudo-random edges per vertex (besides the spanning
    /// chain).
    pub mst_degree: u32,
    /// `em3d` node count per field (native limit study only).
    pub em3d_nodes: u32,
    /// `em3d` dependencies per node.
    pub em3d_degree: u32,
    /// `em3d` iterations.
    pub em3d_iters: u32,
    /// `health` hierarchy levels (native only).
    pub health_levels: u32,
    /// `health` simulation steps.
    pub health_steps: u32,
    /// `power` feeders (native only).
    pub power_feeders: u32,
}

impl OldenParams {
    /// The paper's evaluation parameters (Section 8: "the same
    /// parameters as used in the evaluation of Hardbound").
    #[must_use]
    pub fn paper() -> OldenParams {
        OldenParams {
            treeadd_depth: 21,
            bisort_log2: 18,
            perimeter_levels: 12,
            mst_vertices: 1024,
            mst_degree: 8,
            em3d_nodes: 2000,
            em3d_degree: 10,
            em3d_iters: 30,
            health_levels: 5,
            health_steps: 60,
            power_feeders: 16,
        }
    }

    /// Reduced sizes for quick runs and CI (same shapes, minutes →
    /// milliseconds).
    #[must_use]
    pub fn scaled() -> OldenParams {
        OldenParams {
            treeadd_depth: 12,
            bisort_log2: 10,
            perimeter_levels: 7,
            mst_vertices: 128,
            mst_degree: 6,
            em3d_nodes: 200,
            em3d_degree: 6,
            em3d_iters: 8,
            health_levels: 3,
            health_steps: 12,
            power_feeders: 4,
        }
    }

    /// Medium sizes: large enough that the memory hierarchy dominates
    /// (the regime Figures 4–5 study) while a full three-mode sweep
    /// stays under a minute of host time. The default for the figure
    /// harnesses; `--paper` selects [`OldenParams::paper`].
    #[must_use]
    pub fn medium() -> OldenParams {
        OldenParams {
            treeadd_depth: 18,
            bisort_log2: 14,
            perimeter_levels: 11,
            mst_vertices: 512,
            mst_degree: 8,
            em3d_nodes: 1000,
            em3d_degree: 8,
            em3d_iters: 15,
            health_levels: 4,
            health_steps: 30,
            power_feeders: 8,
        }
    }

    /// Intermediate sizes used by the Figure 5 heap-size sweep, where
    /// `treeadd_depth` etc. are varied explicitly.
    #[must_use]
    pub fn with_treeadd_depth(mut self, depth: u32) -> OldenParams {
        self.treeadd_depth = depth;
        self
    }
}

impl Default for OldenParams {
    /// The scaled (fast) parameters.
    fn default() -> OldenParams {
        OldenParams::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_8() {
        let p = OldenParams::paper();
        assert_eq!(p.treeadd_depth, 21);
        assert_eq!(p.perimeter_levels, 12);
        assert_eq!(p.mst_vertices, 1024);
        // bisort 250000 values ~ 2^18 = 262144.
        assert!((1u64 << p.bisort_log2) >= 250_000);
    }

    #[test]
    fn scaled_is_smaller_everywhere() {
        let p = OldenParams::paper();
        let s = OldenParams::scaled();
        assert!(s.treeadd_depth < p.treeadd_depth);
        assert!(s.bisort_log2 < p.bisort_log2);
        assert!(s.perimeter_levels < p.perimeter_levels);
        assert!(s.mst_vertices < p.mst_vertices);
    }

    #[test]
    fn builder_overrides_depth() {
        let p = OldenParams::scaled().with_treeadd_depth(16);
        assert_eq!(p.treeadd_depth, 16);
    }
}
