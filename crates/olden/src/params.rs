//! Benchmark problem sizes.

use cheri_trace::json::{self, JsonWriter};

/// Problem sizes for the guest workloads: the four Olden kernels, the
/// native-only limit-study workloads, and the `cheri-work` runtime
/// workloads (`vmloop`, `allocstress`).
///
/// The name is historical — the struct predates the non-Olden
/// workloads and every surface (sweep matrix, serve protocol, reports)
/// already spells it this way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OldenParams {
    /// `treeadd` tree depth (paper: `treeadd 21 1 0`).
    pub treeadd_depth: u32,
    /// `bisort`: log2 of the number of sorted values (paper:
    /// `bisort 250000` ≈ 2^18).
    pub bisort_log2: u32,
    /// `perimeter`: quadtree levels (paper: `perimeter 12`).
    pub perimeter_levels: u32,
    /// `mst` vertex count (paper: `mst 1024`).
    pub mst_vertices: u32,
    /// `mst`: extra pseudo-random edges per vertex (besides the spanning
    /// chain).
    pub mst_degree: u32,
    /// `em3d` node count per field (native limit study only).
    pub em3d_nodes: u32,
    /// `em3d` dependencies per node.
    pub em3d_degree: u32,
    /// `em3d` iterations.
    pub em3d_iters: u32,
    /// `health` hierarchy levels (native only).
    pub health_levels: u32,
    /// `health` simulation steps.
    pub health_steps: u32,
    /// `power` feeders (native only).
    pub power_feeders: u32,
    /// `vmloop`: repetitions of the bytecode-program suite.
    pub vm_iters: u32,
    /// `vmloop`: the iterative-fibonacci program's argument.
    pub vm_fib: u32,
    /// `vmloop`: elements bubble-sorted by the sort program.
    pub vm_sort: u32,
    /// `vmloop`: bytes hashed by the string-hash program.
    pub vm_hash: u32,
    /// `allocstress`: arena capacity in slots.
    pub alloc_slots: u32,
    /// `allocstress`: churn operations (alloc/free/scan mix).
    pub alloc_ops: u32,
    /// `allocstress`: width of the live-object root table.
    pub alloc_roots: u32,
}

/// A named accessor for one parameter field.
pub type ParamField = (&'static str, fn(&OldenParams) -> u32);

/// The canonical field order of [`OldenParams::canonical_json`]: every
/// field, paired with its accessor. One list drives serialization,
/// parsing, and the exhaustiveness tests, so a new parameter cannot be
/// added to the struct without joining the canonical form.
pub const PARAM_FIELDS: [ParamField; 18] = [
    ("treeadd_depth", |p| p.treeadd_depth),
    ("bisort_log2", |p| p.bisort_log2),
    ("perimeter_levels", |p| p.perimeter_levels),
    ("mst_vertices", |p| p.mst_vertices),
    ("mst_degree", |p| p.mst_degree),
    ("em3d_nodes", |p| p.em3d_nodes),
    ("em3d_degree", |p| p.em3d_degree),
    ("em3d_iters", |p| p.em3d_iters),
    ("health_levels", |p| p.health_levels),
    ("health_steps", |p| p.health_steps),
    ("power_feeders", |p| p.power_feeders),
    ("vm_iters", |p| p.vm_iters),
    ("vm_fib", |p| p.vm_fib),
    ("vm_sort", |p| p.vm_sort),
    ("vm_hash", |p| p.vm_hash),
    ("alloc_slots", |p| p.alloc_slots),
    ("alloc_ops", |p| p.alloc_ops),
    ("alloc_roots", |p| p.alloc_roots),
];

fn set_field(p: &mut OldenParams, name: &str, v: u32) -> bool {
    match name {
        "treeadd_depth" => p.treeadd_depth = v,
        "bisort_log2" => p.bisort_log2 = v,
        "perimeter_levels" => p.perimeter_levels = v,
        "mst_vertices" => p.mst_vertices = v,
        "mst_degree" => p.mst_degree = v,
        "em3d_nodes" => p.em3d_nodes = v,
        "em3d_degree" => p.em3d_degree = v,
        "em3d_iters" => p.em3d_iters = v,
        "health_levels" => p.health_levels = v,
        "health_steps" => p.health_steps = v,
        "power_feeders" => p.power_feeders = v,
        "vm_iters" => p.vm_iters = v,
        "vm_fib" => p.vm_fib = v,
        "vm_sort" => p.vm_sort = v,
        "vm_hash" => p.vm_hash = v,
        "alloc_slots" => p.alloc_slots = v,
        "alloc_ops" => p.alloc_ops = v,
        "alloc_roots" => p.alloc_roots = v,
        _ => return false,
    }
    true
}

impl OldenParams {
    /// The paper's evaluation parameters (Section 8: "the same
    /// parameters as used in the evaluation of Hardbound").
    #[must_use]
    pub fn paper() -> OldenParams {
        OldenParams {
            treeadd_depth: 21,
            bisort_log2: 18,
            perimeter_levels: 12,
            mst_vertices: 1024,
            mst_degree: 8,
            em3d_nodes: 2000,
            em3d_degree: 10,
            em3d_iters: 30,
            health_levels: 5,
            health_steps: 60,
            power_feeders: 16,
            vm_iters: 8,
            vm_fib: 64,
            vm_sort: 96,
            vm_hash: 2048,
            alloc_slots: 1024,
            alloc_ops: 60_000,
            alloc_roots: 64,
        }
    }

    /// Reduced sizes for quick runs and CI (same shapes, minutes →
    /// milliseconds).
    #[must_use]
    pub fn scaled() -> OldenParams {
        OldenParams {
            treeadd_depth: 12,
            bisort_log2: 10,
            perimeter_levels: 7,
            mst_vertices: 128,
            mst_degree: 6,
            em3d_nodes: 200,
            em3d_degree: 6,
            em3d_iters: 8,
            health_levels: 3,
            health_steps: 12,
            power_feeders: 4,
            vm_iters: 2,
            vm_fib: 24,
            vm_sort: 16,
            vm_hash: 96,
            alloc_slots: 192,
            alloc_ops: 1500,
            alloc_roots: 16,
        }
    }

    /// Medium sizes: large enough that the memory hierarchy dominates
    /// (the regime Figures 4–5 study) while a full three-mode sweep
    /// stays under a minute of host time. The default for the figure
    /// harnesses; `--paper` selects [`OldenParams::paper`].
    #[must_use]
    pub fn medium() -> OldenParams {
        OldenParams {
            treeadd_depth: 18,
            bisort_log2: 14,
            perimeter_levels: 11,
            mst_vertices: 512,
            mst_degree: 8,
            em3d_nodes: 1000,
            em3d_degree: 8,
            em3d_iters: 15,
            health_levels: 4,
            health_steps: 30,
            power_feeders: 8,
            vm_iters: 4,
            vm_fib: 48,
            vm_sort: 48,
            vm_hash: 768,
            alloc_slots: 512,
            alloc_ops: 12_000,
            alloc_roots: 32,
        }
    }

    /// Intermediate sizes used by the Figure 5 heap-size sweep, where
    /// `treeadd_depth` etc. are varied explicitly.
    #[must_use]
    pub fn with_treeadd_depth(mut self, depth: u32) -> OldenParams {
        self.treeadd_depth = depth;
        self
    }

    /// The canonical JSON serialization: every field, in the fixed
    /// [`PARAM_FIELDS`] order, integers only. This is the `params`
    /// object embedded in `JobSpec::canonical_json` (and therefore half
    /// of the `cheri-serve` cache key), so two parameter sets are equal
    /// iff their canonical forms are byte-equal.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut w = JsonWriter::object();
        for (name, get) in PARAM_FIELDS {
            w.u64_field(name, u64::from(get(self)));
        }
        w.close()
    }

    /// Parses the canonical form back. Strict on the field set: every
    /// field of [`PARAM_FIELDS`] must be present, and any field this
    /// version does not know is rejected by name — a params object from
    /// a newer (or corrupted) writer must not silently drop sizes.
    ///
    /// # Errors
    ///
    /// Describes the malformed / missing / unknown field.
    pub fn from_canonical_json(text: &str) -> Result<OldenParams, String> {
        let doc = json::parse(text).map_err(|e| format!("params: {e}"))?;
        let obj = doc.as_obj().ok_or("params: not a JSON object")?;
        let mut p = OldenParams::scaled();
        let mut seen = 0usize;
        for (name, value) in obj {
            let v = value
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("params: field '{name}' is not a u32"))?;
            if !set_field(&mut p, name, v) {
                return Err(format!("params: unknown field '{name}'"));
            }
            seen += 1;
        }
        if seen != PARAM_FIELDS.len() {
            for (name, _) in PARAM_FIELDS {
                if obj.get(name).is_none() {
                    return Err(format!("params: missing field '{name}'"));
                }
            }
        }
        Ok(p)
    }
}

impl Default for OldenParams {
    /// The scaled (fast) parameters.
    fn default() -> OldenParams {
        OldenParams::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_8() {
        let p = OldenParams::paper();
        assert_eq!(p.treeadd_depth, 21);
        assert_eq!(p.perimeter_levels, 12);
        assert_eq!(p.mst_vertices, 1024);
        // bisort 250000 values ~ 2^18 = 262144.
        assert!((1u64 << p.bisort_log2) >= 250_000);
    }

    #[test]
    fn scaled_is_smaller_everywhere() {
        let p = OldenParams::paper();
        let s = OldenParams::scaled();
        assert!(s.treeadd_depth < p.treeadd_depth);
        assert!(s.bisort_log2 < p.bisort_log2);
        assert!(s.perimeter_levels < p.perimeter_levels);
        assert!(s.mst_vertices < p.mst_vertices);
        assert!(s.vm_iters < p.vm_iters);
        assert!(s.vm_sort < p.vm_sort);
        assert!(s.alloc_ops < p.alloc_ops);
    }

    #[test]
    fn builder_overrides_depth() {
        let p = OldenParams::scaled().with_treeadd_depth(16);
        assert_eq!(p.treeadd_depth, 16);
    }

    /// A params value with every field set to a distinct number, so a
    /// codec bug that swaps or drops any one field is caught.
    fn distinct_params() -> OldenParams {
        let mut p = OldenParams::scaled();
        for (i, (name, _)) in PARAM_FIELDS.iter().enumerate() {
            assert!(set_field(&mut p, name, 1000 + i as u32), "setter for {name}");
        }
        p
    }

    #[test]
    fn canonical_json_serializes_every_field_in_order() {
        let p = distinct_params();
        let text = p.canonical_json();
        let mut at = 0usize;
        for (i, (name, _)) in PARAM_FIELDS.iter().enumerate() {
            let needle = format!("\"{name}\":{}", 1000 + i);
            let pos = text[at..].find(&needle).unwrap_or_else(|| {
                panic!("canonical form must contain {needle:?} after byte {at}: {text}")
            });
            at += pos + needle.len();
        }
    }

    #[test]
    fn canonical_json_round_trips_every_field() {
        let p = distinct_params();
        let back = OldenParams::from_canonical_json(&p.canonical_json()).unwrap();
        assert_eq!(back, p);
        // Idempotent: re-serializing the parse is byte-identical, so the
        // canonical form is a fixed point (the cache-key property).
        assert_eq!(back.canonical_json(), p.canonical_json());
    }

    #[test]
    fn presets_round_trip() {
        for p in [OldenParams::scaled(), OldenParams::medium(), OldenParams::paper()] {
            assert_eq!(OldenParams::from_canonical_json(&p.canonical_json()).unwrap(), p);
        }
    }

    #[test]
    fn unknown_field_is_rejected_by_name() {
        let text =
            OldenParams::scaled().canonical_json().replacen("treeadd_depth", "tree_depth", 1);
        let err = OldenParams::from_canonical_json(&text).unwrap_err();
        assert!(err.contains("unknown field 'tree_depth'"), "{err}");
    }

    #[test]
    fn missing_field_is_rejected_by_name() {
        let p = OldenParams::scaled();
        let text = p.canonical_json();
        let needle = format!(",\"alloc_roots\":{}", p.alloc_roots);
        let text = text.replace(&needle, "");
        let err = OldenParams::from_canonical_json(&text).unwrap_err();
        assert!(err.contains("missing field 'alloc_roots'"), "{err}");
    }

    #[test]
    fn non_integer_value_is_rejected_by_name() {
        let p = OldenParams::scaled();
        let text = p.canonical_json().replacen(
            &format!("\"vm_fib\":{}", p.vm_fib),
            "\"vm_fib\":\"ten\"",
            1,
        );
        let err = OldenParams::from_canonical_json(&text).unwrap_err();
        assert!(err.contains("field 'vm_fib' is not a u32"), "{err}");
    }

    #[test]
    fn non_object_is_rejected() {
        assert!(OldenParams::from_canonical_json("[1,2]").unwrap_err().contains("not a JSON"));
    }

    #[test]
    fn allocstress_presets_keep_the_arena_deeper_than_the_live_set() {
        // The root table can pin at most `roots × 8` slots (chain depth
        // is capped at 8 in the workload); the arena must exceed that
        // or the guest allocator runs dry mid-churn.
        for p in [OldenParams::scaled(), OldenParams::medium(), OldenParams::paper()] {
            assert!(p.alloc_slots > p.alloc_roots * 8, "{p:?}");
        }
    }
}
