//! # cheri-olden — the Olden benchmarks for the CHERI reproduction
//!
//! "We used the Olden benchmarks, a suite developed for distributed
//! shared-memory research that has become popular in bounds-checking
//! research due to its focus on pointer-based data structures."
//! (Section 7.)
//!
//! Two forms of each workload:
//!
//! * [`dsl`] — the four benchmarks the paper runs on the FPGA (Section 8:
//!   `bisort`, `mst`, `treeadd`, `perimeter`), written once in the
//!   `cheri-cc` IR and compiled under each pointer strategy — producing
//!   the conventional-MIPS, CCured-style, and CHERI binaries of
//!   Figure 4. Each prints result checksums via `SYS_PRINT` so the
//!   harness can assert all three binaries computed the same answer, and
//!   marks its allocation/computation phases via `SYS_PHASE`.
//! * [`native`] — host-speed implementations running against
//!   [`cheri_limit::TracedHeap`], producing the pointer-event traces the
//!   Figure 3 limit study consumes (including the additional `em3d`,
//!   `health`, and `power` workloads).
//!
//! [`params::OldenParams`] holds the problem sizes; `paper()` matches the
//! paper's parameters and `scaled()` keeps CI-sized runs fast.

pub mod dsl;
pub mod native;
pub mod params;

pub use dsl::DslBench;
pub use params::OldenParams;
