//! End-to-end integration: IR → three binaries → simulated OS → results,
//! and the paper's adoption/compatibility stories exercised across
//! crates.

use cheri::cc::ir::build::*;
use cheri::cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};
use cheri::cc::strategy::{CapPtr, LegacyPtr, PtrStrategy, SoftFatPtr};
use cheri::olden::dsl::{run_bench, DslBench};
use cheri::olden::OldenParams;
use cheri::os::{boot, ExitReason, KernelConfig};
use cheri::sim::MachineConfig;

fn run_module(module: &Module, strategy: &dyn PtrStrategy) -> cheri::os::RunOutcome {
    let program = cheri::cc::compile(module, strategy, Default::default())
        .unwrap_or_else(|e| panic!("[{}] {e}", strategy.name()));
    let mut kernel = boot(KernelConfig::default());
    kernel.exec_and_run(&program).expect("kernel run")
}

/// A linked-list workload with interior sharing: builds a list, reverses
/// it in place (pointer swaps), and sums it.
fn list_reverse_module(n: i64) -> Module {
    let node = 0usize;
    Module {
        structs: vec![StructDef { name: "node", fields: vec![Ty::I64, Ty::ptr(0)] }],
        funcs: vec![FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            // locals: head, cur, prev, next, i, sum
            locals: vec![
                Ty::ptr(node),
                Ty::ptr(node),
                Ty::ptr(node),
                Ty::ptr(node),
                Ty::I64,
                Ty::I64,
            ],
            body: vec![
                // Build: head = null; for i in 0..n { n = alloc; n.val = i; n.next = head; head = n }
                Stmt::Let(0, Expr::Null(node)),
                Stmt::Let(4, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Lt, l(4), c(n)),
                    body: vec![
                        Stmt::Let(1, alloc(node, c(1))),
                        Stmt::Store { ptr: l(1), strukt: node, field: 0, value: l(4) },
                        Stmt::StorePtr { ptr: l(1), strukt: node, field: 1, value: l(0) },
                        Stmt::Let(0, l(1)),
                        Stmt::Let(4, add(l(4), c(1))),
                    ],
                },
                // Reverse in place.
                Stmt::Let(2, Expr::Null(node)),
                Stmt::Let(1, l(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Eq, is_null(l(1)), c(0)),
                    body: vec![
                        Stmt::Let(3, loadp(l(1), node, 1)),
                        Stmt::StorePtr { ptr: l(1), strukt: node, field: 1, value: l(2) },
                        Stmt::Let(2, l(1)),
                        Stmt::Let(1, l(3)),
                    ],
                },
                // Sum (weighted by position to catch ordering bugs).
                Stmt::Let(1, l(2)),
                Stmt::Let(4, c(1)),
                Stmt::Let(5, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Eq, is_null(l(1)), c(0)),
                    body: vec![
                        Stmt::Let(5, add(l(5), mul(l(4), load(l(1), node, 0)))),
                        Stmt::Let(4, add(l(4), c(1))),
                        Stmt::Let(1, loadp(l(1), node, 1)),
                    ],
                },
                Stmt::Return(Some(l(5))),
            ],
        }],
        entry: 0,
    }
}

use cheri::cc::ir::Expr;

#[test]
fn list_reversal_agrees_across_all_modes() {
    let module = list_reverse_module(50);
    // After reversal the list runs 0..n, so position i+1 holds value i.
    let expect: i64 = (0..50).map(|i| (i + 1) * i).sum();
    let strategies: [&dyn PtrStrategy; 4] =
        [&LegacyPtr, &SoftFatPtr::checked(), &SoftFatPtr::eliding(), &CapPtr::c256()];
    for s in strategies {
        let out = run_module(&module, s);
        assert_eq!(out.exit_value(), Some(expect as u64), "[{}] {:?}", s.name(), out.exit);
    }
}

#[test]
fn undefined_pointer_arithmetic_traps_only_on_cheri() {
    // Section 10: "Some applications routinely construct pointers that
    // extend significantly beyond the end of valid buffers ... which
    // will trigger exceptions on CHERI."
    let cellty = 0usize;
    let module = Module {
        structs: vec![StructDef { name: "cell", fields: vec![Ty::I64] }],
        funcs: vec![FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(cellty), Ty::ptr(cellty)],
            body: vec![
                Stmt::Let(0, alloc(cellty, c(4))),
                // Construct a pointer 100 elements past the end — never
                // dereferenced, but CHERI's CIncBase refuses to mint it.
                Stmt::Let(1, index(l(0), cellty, c(100))),
                Stmt::Return(Some(c(0))),
            ],
        }],
        entry: 0,
    };
    let legacy = run_module(&module, &LegacyPtr);
    assert_eq!(legacy.exit_value(), Some(0), "legacy tolerates the dangling pointer");
    let soft = run_module(&module, &SoftFatPtr::checked());
    assert_eq!(soft.exit_value(), Some(0), "soft FP only checks on dereference");
    let cheri = run_module(&module, &CapPtr::c256());
    assert!(
        matches!(cheri.exit, ExitReason::CapFault { .. }),
        "CHERI refuses out-of-bounds derivation: {:?}",
        cheri.exit
    );
}

#[test]
fn cheri_checksums_and_pages_on_olden() {
    // A cross-crate smoke of the Figure 4 pipeline at tiny sizes,
    // checking page-footprint ordering too: capability binaries touch
    // more pages than legacy ones (4x pointers), software FP in between.
    let p = OldenParams::scaled();
    let strategies: [&dyn PtrStrategy; 3] = [&LegacyPtr, &SoftFatPtr::checked(), &CapPtr::c256()];
    let mut pages = Vec::new();
    let mut sums: Vec<Vec<u64>> = Vec::new();
    for s in strategies {
        let cfg = MachineConfig {
            mem_bytes: DslBench::Treeadd.mem_needed(&p, s),
            ..MachineConfig::default()
        };
        let run = run_bench(DslBench::Treeadd, &p, s, cfg).unwrap();
        pages.push(run.outcome.pages_touched);
        sums.push(run.checksums().to_vec());
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[0], sums[2]);
    assert!(pages[2] > pages[1], "cheri pages {} <= soft pages {}", pages[2], pages[1]);
    assert!(pages[1] > pages[0], "soft pages {} <= legacy pages {}", pages[1], pages[0]);
}

#[test]
fn const_capability_blocks_stores() {
    // Section 5.1: "a const-qualified capability pointer will explicitly
    // disclaim the write permission via the CAndPerm instruction, so
    // that the processor will throw an exception if attempts are made to
    // write through it."
    use cheri::asm::{reg, Asm};
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let mut a = Asm::new(layout.text_base);
    a.li64(reg::T0, layout.heap_base as i64);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 64);
    a.csetlen(1, 1, reg::T1);
    // const cast: keep only LOAD.
    a.li64(reg::T2, 0b00001);
    a.candperm(2, 1, reg::T2);
    a.cld(reg::T3, reg::ZERO, 0, 2); // reading is fine
    a.csd(reg::T3, reg::ZERO, 0, 2); // writing must trap
    a.li64(reg::V0, cheri::os::abi::SYS_EXIT as i64);
    a.syscall(0);
    let out = kernel.exec_and_run(&a.finalize().unwrap()).unwrap();
    match out.exit {
        ExitReason::CapFault { cause, .. } => {
            assert_eq!(cause.code(), cheri::core::CapExcCode::PermitStoreViolation);
            assert_eq!(cause.reg(), 2);
        }
        other => panic!("expected a store-permission fault, got {other:?}"),
    }
}
