//! OS-level integration: capability delegation, context switches,
//! capability-free shared memory, and revocation by unmapping — the
//! Section 4.3 / 6.1 operating-system stories.

use cheri::asm::{reg, Asm};
use cheri::core::{CapExcCode, Capability, Perms};
use cheri::os::{abi, boot, Context, ExitReason, KernelConfig};
use cheri::sim::tlb::TlbFlags;
use cheri::sim::{Machine, MachineConfig, StepResult, TrapKind};

#[test]
fn unmodified_os_boots_with_full_authority() {
    // Section 4.3: "On CPU reset, capability registers are initialized,
    // granting the OS access to the entire address space so an OS can
    // run unchanged without knowledge of the capability extensions."
    let m = Machine::new(MachineConfig::default());
    assert_eq!(*m.cpu.caps.c0(), Capability::max());
    assert_eq!(*m.cpu.caps.pcc(), Capability::max());
    assert!(m.cpu.caps.within(&Capability::max()));
}

#[test]
fn context_switch_preserves_capability_state() {
    // Two "threads" with different capability restrictions; switching
    // back and forth must round-trip the full 33-capability state.
    let mut m = Machine::new(MachineConfig::default());
    m.cpu.set_gpr(5, 111);
    m.cpu.caps.set(7, Capability::new(0x1000, 0x100, Perms::LOAD).unwrap());
    let thread_a = Context::save(&m.cpu);

    // Thread B: different registers and authority.
    m.cpu.set_gpr(5, 222);
    m.cpu.caps.set(7, Capability::null());
    m.cpu.caps.set_c0(Capability::new(0, 0x1000, Perms::ALL).unwrap());
    let thread_b = Context::save(&m.cpu);

    thread_a.restore(&mut m.cpu);
    assert_eq!(m.cpu.gpr[5], 111);
    assert_eq!(m.cpu.caps.get(7).base(), 0x1000);
    thread_b.restore(&mut m.cpu);
    assert_eq!(m.cpu.gpr[5], 222);
    assert!(!m.cpu.caps.get(7).tag());
    assert_eq!(m.cpu.caps.c0().length(), 0x1000);
}

#[test]
fn shared_memory_cannot_carry_capabilities() {
    // Section 6.1: "This also allows the OS to implement shared memory
    // between processes that cannot act as a channel for passing
    // capabilities." A page mapped without the capability-store bit
    // rejects CSC of a tagged capability but accepts plain data.
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    m.enable_translation();
    m.tlb_install(0x1000, 0x1000, TlbFlags::rw()); // code page
    m.tlb_install(0x8000, 0x8000, TlbFlags::rw_no_caps()); // "shared" page

    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, 0x8000);
    a.li64(reg::T1, 42);
    a.sd(reg::T1, reg::T0, 0); // plain data: allowed
    a.csc(0, reg::T0, 1, 0); // a tagged capability: must trap
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(0x1000, &prog.words).unwrap();
    m.cpu.jump_to(prog.entry);
    let r = loop {
        match m.step().unwrap() {
            StepResult::Continue => {}
            other => break other,
        }
    };
    match r {
        StepResult::Trap(e) => match e.kind {
            TrapKind::CapViolation(cause) => {
                assert_eq!(cause.code(), CapExcCode::TlbProhibitStoreCap);
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    assert_eq!(m.mem.read_u64(0x8000).unwrap(), 42, "the data store landed");
}

#[test]
fn revocation_by_unmapping() {
    // Section 6.1: "the operating system can manipulate mappings of the
    // underlying pages to enforce revocation."
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    m.enable_translation();
    m.tlb_install(0x1000, 0x1000, TlbFlags::rw());
    m.tlb_install(0x8000, 0x8000, TlbFlags::rw());

    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, 0x8000);
    a.ld(reg::T1, reg::T0, 0); // first access: fine
    a.ld(reg::T2, reg::T0, 8); // second access: revoked by then
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(0x1000, &prog.words).unwrap();
    m.cpu.jump_to(prog.entry);

    // Run until the first load retires.
    while m.stats.loads == 0 {
        assert_eq!(m.step().unwrap(), StepResult::Continue);
    }
    // The OS revokes the region: the capability itself is untouched, but
    // the backing page disappears.
    m.tlb_invalidate_page(0x8000);
    let r = loop {
        match m.step().unwrap() {
            StepResult::Continue => {}
            other => break other,
        }
    };
    assert!(
        matches!(r, StepResult::Trap(e) if matches!(e.kind, TrapKind::TlbInvalid { .. })),
        "access after revocation must fault: {r:?}"
    );
}

#[test]
fn exec_delegates_exactly_the_user_space() {
    // Section 4.3: "the entire user virtual address space is delegated
    // to the user register file"; the process cannot reach beyond it.
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let mut a = Asm::new(layout.text_base);
    // Try to read one byte past the delegated space via legacy load.
    a.li64(reg::T0, layout.user_top as i64);
    a.ld(reg::T1, reg::T0, 0);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let out = kernel.exec_and_run(&a.finalize().unwrap()).unwrap();
    match out.exit {
        ExitReason::CapFault { cause, .. } => {
            assert_eq!(cause.code(), CapExcCode::LengthViolation);
            assert_eq!(cause.reg(), 0, "C0 is the ambient boundary");
        }
        other => panic!("expected C0 to stop the access: {other:?}"),
    }
}

#[test]
fn malloc_without_system_calls() {
    // Section 4.2: "A memory protection scheme that requires a system
    // call for every malloc() would negate this optimization." Our
    // capability-aware bump allocator performs many allocations with
    // zero syscalls beyond process setup.
    use cheri::cc::ir::build::*;
    use cheri::cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};
    let module = Module {
        structs: vec![StructDef { name: "cell", fields: vec![Ty::I64] }],
        funcs: vec![FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(0), Ty::I64],
            body: vec![
                Stmt::Let(1, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Lt, l(1), c(1000)),
                    body: vec![
                        Stmt::Let(0, alloc(0, c(1))),
                        Stmt::Store { ptr: l(0), strukt: 0, field: 0, value: l(1) },
                        Stmt::Let(1, add(l(1), c(1))),
                    ],
                },
                Stmt::Return(Some(load(l(0), 0, 0))),
            ],
        }],
        entry: 0,
    };
    let program =
        cheri::cc::compile(&module, &cheri::cc::strategy::CapPtr::c256(), Default::default())
            .unwrap();
    let mut kernel = boot(KernelConfig::default());
    let out = kernel.exec_and_run(&program).unwrap();
    assert_eq!(out.exit_value(), Some(999));
    // 1000 bounded allocations, two syscalls total (phaseless program:
    // just the exit) — user-mode capability management at work.
    assert!(
        out.stats.syscalls <= 2,
        "allocations must not enter the kernel: {}",
        out.stats.syscalls
    );
}
