//! The paper's Section 11 ("Future work") features: trap-mediated
//! protected domain crossing and tag-driven garbage collection.

use cheri::asm::{reg, Asm};
use cheri::core::Capability;
use cheri::os::{abi, boot, ExitReason, KernelConfig};

/// Builds a callee compartment at `base`: a function that doubles its
/// argument and returns via SYS_DRETURN. Addresses inside the
/// compartment are C0-relative.
fn double_server(base: u64) -> cheri::asm::Program {
    let mut a = Asm::new(base);
    a.daddu(reg::A0, reg::A0, reg::A0);
    a.li64(reg::V0, abi::SYS_DRETURN as i64);
    a.syscall(0);
    a.finalize().unwrap()
}

/// A callee that tries to read the caller's secret at an absolute
/// address outside its compartment.
fn nosy_server(base: u64, secret_addr: u64) -> cheri::asm::Program {
    let mut a = Asm::new(base);
    // The compartment's C0 starts at `base`, so address X in the
    // caller's space is (X - base) compartment-relative... but any
    // offset past the compartment length must trap.
    a.li64(reg::T0, (secret_addr.wrapping_sub(base)) as i64);
    a.ld(reg::A0, reg::T0, 0);
    a.li64(reg::V0, abi::SYS_DRETURN as i64);
    a.syscall(0);
    a.finalize().unwrap()
}

#[test]
fn protected_domain_call_round_trip() {
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let dom_base = 0x40_0000u64;
    let dom_len = 0x1000u64;

    // Caller: secret on the heap; calls domain 0 with 21; exits with the
    // result plus a marker proving it resumed with its own state.
    let mut a = Asm::new(layout.text_base);
    a.li64(reg::S0, 1000); // caller-held state
    a.li64(reg::A0, 0); // domain id
    a.li64(reg::A1, 21); // argument
    a.li64(reg::V0, abi::SYS_DCALL as i64);
    a.syscall(0);
    a.daddu(reg::A0, reg::V0, reg::S0); // 42 + 1000: s0 must survive
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let caller = a.finalize().unwrap();

    kernel.exec(&caller).unwrap();
    kernel.load_image(&double_server(dom_base)).unwrap();
    kernel.register_domain("doubler", dom_base, dom_base, dom_len).unwrap();
    let out = kernel.run().unwrap();
    assert_eq!(out.exit_value(), Some(1042), "{:?}", out.exit);
    assert_eq!(kernel.domain_call_depth(), 0, "call stack balanced");
}

#[test]
fn compromised_domain_cannot_read_caller_memory() {
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let dom_base = 0x40_0000u64;
    let secret_addr = layout.heap_base;

    let mut a = Asm::new(layout.text_base);
    // Park a secret on the heap.
    a.li64(reg::T0, secret_addr as i64);
    a.li64(reg::T1, 0x5ec2e7);
    a.sd(reg::T1, reg::T0, 0);
    a.li64(reg::A0, 0);
    a.li64(reg::A1, 0);
    a.li64(reg::V0, abi::SYS_DCALL as i64);
    a.syscall(0);
    a.move_(reg::A0, reg::V0);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let caller = a.finalize().unwrap();

    kernel.exec(&caller).unwrap();
    kernel.load_image(&nosy_server(dom_base, secret_addr)).unwrap();
    kernel.register_domain("nosy", dom_base, dom_base, 0x1000).unwrap();
    let out = kernel.run().unwrap();
    match out.exit {
        ExitReason::CapFault { cause, .. } => {
            assert_eq!(cause.reg(), 0, "the compartment C0 stops the read");
        }
        other => panic!("the nosy domain must fault, got {other:?}"),
    }
}

#[test]
fn callee_registers_do_not_leak_to_or_from_caller() {
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let dom_base = 0x40_0000u64;

    // Callee returns whatever it finds in $s0 — which must be 0, not the
    // caller's 777.
    let mut srv = Asm::new(dom_base);
    srv.move_(reg::A0, reg::S0);
    srv.li64(reg::V0, abi::SYS_DRETURN as i64);
    srv.syscall(0);
    let server = srv.finalize().unwrap();

    let mut a = Asm::new(layout.text_base);
    a.li64(reg::S0, 777);
    a.li64(reg::A0, 0);
    a.li64(reg::A1, 5);
    a.li64(reg::V0, abi::SYS_DCALL as i64);
    a.syscall(0);
    a.move_(reg::A0, reg::V0);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let caller = a.finalize().unwrap();

    kernel.exec(&caller).unwrap();
    kernel.load_image(&server).unwrap();
    kernel.register_domain("leaky?", dom_base, dom_base, 0x1000).unwrap();
    let out = kernel.run().unwrap();
    assert_eq!(out.exit_value(), Some(0), "caller registers must not leak into the callee");
}

#[test]
fn invalid_domain_id_fails_cleanly() {
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let mut a = Asm::new(layout.text_base);
    a.li64(reg::A0, 99); // no such domain
    a.li64(reg::V0, abi::SYS_DCALL as i64);
    a.syscall(0);
    a.move_(reg::A0, reg::V0);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let out = kernel.exec_and_run(&a.finalize().unwrap()).unwrap();
    assert_eq!(out.exit_value(), Some(u64::MAX));
}

#[test]
fn gc_trace_finds_exactly_the_reachable_heap() {
    // A guest program allocates three 64-byte objects, chains two of
    // them through a capability stored in memory, keeps a register
    // capability to the chain head, drops every other right (clearing
    // C0), and stops. The tracing pass must see exactly the two chained
    // objects.
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let heap = layout.heap_base as i64;

    let mut a = Asm::new(layout.text_base);
    // C1 -> obj0 [heap, 64); C2 -> obj1 [heap+64, 64); C3 -> obj2.
    for (reg_c, off) in [(1u8, 0i64), (2, 64), (3, 128)] {
        a.li64(reg::T0, heap + off);
        a.cincbase(reg_c, 0, reg::T0);
        a.li64(reg::T1, 64);
        a.csetlen(reg_c, reg_c, reg::T1);
    }
    // Store C2 inside obj0 (at heap+32, a 32-byte aligned slot), so it
    // is reachable *through* C1's region.
    a.li64(reg::T0, heap + 32);
    a.csc(2, reg::T0, 0, 0);
    // Simulate the allocator bump so heap_used() covers 3 objects.
    a.li64(reg::T0, layout.heap_ptr_cell() as i64);
    a.li64(reg::T1, heap + 192);
    a.sd(reg::T1, reg::T0, 0);
    // Drop ambient rights: clear C0, C2 and C3; only C1 (and PCC) remain.
    a.ccleartag(0, 0);
    a.ccleartag(2, 2);
    a.ccleartag(3, 3);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    let out = kernel.exec_and_run(&prog).unwrap();
    assert_eq!(out.exit_value(), Some(0));

    // Guest code cannot shrink its own PCC mid-run (PCC is written only
    // by capability jumps); model the restricted-domain end state
    // kernel-side before tracing.
    let text = Capability::new(layout.text_base, 0x1000, cheri::core::Perms::EXECUTE).unwrap();
    kernel.machine_mut().cpu.caps.set_pcc(text);
    let report = kernel.gc_trace();
    // Reachable: PCC (text) + C1's obj0 + the capability to obj1 stored
    // inside obj0. obj2 is garbage.
    let heap = layout.heap_base;
    assert!(
        report.reachable.iter().any(|&(b, e)| b == heap && e >= heap + 128),
        "objects 0 and 1 must be reachable: {:?}",
        report.reachable
    );
    assert_eq!(
        report.reclaimable_heap_bytes, 64,
        "exactly the dropped third object is reclaimable"
    );
    assert!(report.live_capabilities >= 3); // PCC, C1, stored C2
}

#[test]
fn gc_is_precise_not_conservative() {
    // An *untagged* bit-pattern identical to a capability must not make
    // its target reachable — the precision tags buy (Section 11).
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();
    let heap = layout.heap_base as i64;

    let mut a = Asm::new(layout.text_base);
    // C1 -> obj0. Derive C2 -> obj1 but store it with its TAG CLEARED.
    a.li64(reg::T0, heap);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 64);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T0, heap + 64);
    a.cincbase(2, 0, reg::T0);
    a.li64(reg::T1, 64);
    a.csetlen(2, 2, reg::T1);
    a.ccleartag(2, 2); // same bits, no authority
    a.li64(reg::T0, heap + 32);
    a.csc(2, reg::T0, 0, 0);
    // Bump allocator over both objects; drop C0 and C2.
    a.li64(reg::T0, layout.heap_ptr_cell() as i64);
    a.li64(reg::T1, heap + 128);
    a.sd(reg::T1, reg::T0, 0);
    a.ccleartag(0, 0);
    a.ccleartag(2, 2);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    kernel.exec_and_run(&a.finalize().unwrap()).unwrap();
    let text = Capability::new(layout.text_base, 0x1000, cheri::core::Perms::EXECUTE).unwrap();
    kernel.machine_mut().cpu.caps.set_pcc(text);
    let report = kernel.gc_trace();
    assert_eq!(
        report.reclaimable_heap_bytes, 64,
        "the untagged pointer must not keep obj1 alive: {report:?}"
    );
}
