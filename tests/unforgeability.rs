//! System-level unforgeability: property tests that *executed guest
//! code* — not just the pure model — can never escalate its authority
//! beyond what the OS delegated (Section 4.2: "a protection domain is
//! defined by the transitive closure of memory capabilities reachable
//! from its capability register set").

use cheri::asm::Asm;
use cheri::core::Capability;
use cheri::core::Perms;
use cheri::sim::inst::{CheriInst, Inst};
use cheri::sim::{Machine, MachineConfig, StepResult};
use proptest::prelude::*;

/// A random CHERI manipulation instruction over registers 0..8 and GPRs
/// t0..t3 (which hold arbitrary values).
fn arb_cap_inst() -> impl Strategy<Value = CheriInst> {
    let r = 0u8..8;
    let g = 12u8..16; // $t0..$t3
    prop_oneof![
        (r.clone(), r.clone(), g.clone()).prop_map(|(cd, cb, rt)| CheriInst::CIncBase {
            cd,
            cb,
            rt
        }),
        (r.clone(), r.clone(), g.clone()).prop_map(|(cd, cb, rt)| CheriInst::CSetLen {
            cd,
            cb,
            rt
        }),
        (r.clone(), r.clone(), g.clone()).prop_map(|(cd, cb, rt)| CheriInst::CAndPerm {
            cd,
            cb,
            rt
        }),
        (r.clone(), r.clone()).prop_map(|(cd, cb)| CheriInst::CClearTag { cd, cb }),
        (r.clone(), r.clone(), g.clone()).prop_map(|(cd, cb, rt)| CheriInst::CFromPtr {
            cd,
            cb,
            rt
        }),
        (g.clone(), r.clone(), r.clone()).prop_map(|(rd, cb, ct)| CheriInst::CToPtr { rd, cb, ct }),
        (r.clone(), r.clone()).prop_map(|(rd, cd)| CheriInst::CGetPCC { rd, cd }),
        // Capability stores/loads through C0 at a fixed aligned slot.
        (r.clone(), 0u8..4).prop_map(|(cs, slot)| CheriInst::CSC {
            cs,
            cb: 0,
            rt: 0,
            imm: slot as i8
        }),
        (r, 0u8..4).prop_map(|(cd, slot)| CheriInst::CLC { cd, cb: 0, rt: 0, imm: slot as i8 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of capability instructions runs, every
    /// capability register stays dominated by the initially delegated
    /// authority — including values that round-trip through memory.
    #[test]
    fn guest_code_cannot_escalate(
        instrs in proptest::collection::vec(arb_cap_inst(), 1..40),
        seeds in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        // Delegate a bounded domain, as exec() does.
        let domain = Capability::new(0, 0x10000, Perms::ALL).unwrap();
        m.cpu.caps = cheri::core::CapRegFile::empty();
        m.cpu.caps.set_c0(domain);
        m.cpu.caps.set_pcc(domain);
        // Arbitrary integer state.
        for (i, s) in seeds.iter().enumerate() {
            m.cpu.set_gpr(12 + i as u8, *s);
        }
        // Assemble the fuzz program at 0x1000 (inside the domain).
        let mut a = Asm::new(0x1000);
        for c in &instrs {
            a.emit(Inst::Cheri(*c));
        }
        a.syscall(0);
        let prog = a.finalize().unwrap();
        m.load_code(prog.base, &prog.words).unwrap();
        m.cpu.jump_to(prog.entry);

        // Run; traps simply skip the faulting instruction (a lenient
        // kernel maximises the attack surface explored).
        for _ in 0..10_000 {
            match m.step().unwrap() {
                StepResult::Continue => {}
                StepResult::Syscall => break,
                StepResult::Trap(_) => m.advance_past_trap(),
                other => panic!("{other:?}"),
            }
        }

        // No register — and no capability parked in memory — exceeds the
        // delegated domain.
        prop_assert!(
            m.cpu.caps.within(&domain),
            "register file escaped the domain: {:?}",
            m.cpu.caps
        );
        for slot in 0..4u64 {
            let cap = m.mem.read_cap(slot * 32).unwrap();
            prop_assert!(
                domain.dominates(&cap),
                "memory slot {slot} holds escalated capability {cap}"
            );
        }
    }

    /// Data writes over capability slots always destroy the tag, no
    /// matter the write width or offset.
    #[test]
    fn any_data_store_clears_tags(off in 0u64..32, width_sel in 0u8..4) {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        let cap = Capability::new(0x4000, 64, Perms::ALL).unwrap();
        m.mem.write_cap(0x2000, &cap).unwrap();
        let width = 1u64 << width_sel;
        let addr = 0x2000 + (off & !(width - 1));
        match width {
            1 => m.mem.write_u8(addr, 0).unwrap(),
            2 => m.mem.write_u16(addr, 0).unwrap(),
            4 => m.mem.write_u32(addr, 0).unwrap(),
            _ => m.mem.write_u64(addr, 0).unwrap(),
        }
        prop_assert!(!m.mem.read_cap(0x2000).unwrap().tag());
    }
}
