//! The compressed 128-bit capability configuration (Section 4.1's
//! proposed production format) exercised at machine level.

use cheri::asm::{reg, Asm};
use cheri::core::CapExcCode;
use cheri::sim::machine::CapFormat;
use cheri::sim::{Machine, MachineConfig, StepResult};

fn machine128() -> Machine {
    let mut m = Machine::new(MachineConfig {
        mem_bytes: 1 << 20,
        cap_format: CapFormat::C128,
        ..MachineConfig::default()
    });
    m.cpu.jump_to(0x1000);
    m
}

fn run_to_syscall(m: &mut Machine) -> Result<(), cheri::sim::Exception> {
    loop {
        match m.step().unwrap() {
            StepResult::Continue => {}
            StepResult::Syscall => return Ok(()),
            StepResult::Trap(e) => return Err(e),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn csc_clc_roundtrip_in_16_bytes() {
    let mut m = machine128();
    let mut a = Asm::new(0x1000);
    // Build C1 over [0x4000, 0x4000+0x100), store it at 0x2000, reload
    // into C3, compare fields.
    a.li64(reg::T0, 0x4000);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 0x100);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T2, 0x2000);
    a.csc(1, reg::T2, 0, 0);
    a.clc(3, reg::T2, 0, 0);
    a.cgettag(reg::T3, 3);
    a.cgetbase(reg::T8, 3);
    a.cgetlen(reg::T9, 3);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    run_to_syscall(&mut m).unwrap();
    assert_eq!(m.cpu.gpr[reg::T3 as usize], 1, "tag survives");
    assert_eq!(m.cpu.gpr[reg::T8 as usize], 0x4000);
    assert_eq!(m.cpu.gpr[reg::T9 as usize], 0x100);
    // Only 16 bytes moved per capability access.
    assert_eq!(m.stats.bytes_stored, 16);
    assert_eq!(m.stats.bytes_loaded, 16);
}

#[test]
fn tag_granule_is_16_bytes() {
    let mut m = machine128();
    assert_eq!(m.mem.granule(), 16);
    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, 0x4000);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 0x100);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T2, 0x2000);
    a.csc(1, reg::T2, 0, 0);
    // A data store 16 bytes away is in the NEXT granule: tag survives.
    a.li64(reg::T1, 0x99);
    a.sd(reg::T1, reg::T2, 16);
    a.clc(3, reg::T2, 0, 0);
    a.cgettag(reg::T3, 3);
    // A data store inside the granule kills it.
    a.sd(reg::T1, reg::T2, 8);
    a.clc(4, reg::T2, 0, 0);
    a.cgettag(reg::T8, 4);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    run_to_syscall(&mut m).unwrap();
    assert_eq!(m.cpu.gpr[reg::T3 as usize], 1, "adjacent-granule store preserves tag");
    assert_eq!(m.cpu.gpr[reg::T8 as usize], 0, "in-granule store clears tag");
}

#[test]
fn sixteen_byte_alignment_suffices_and_is_required() {
    let mut m = machine128();
    let mut a = Asm::new(0x1000);
    a.cfromptr(5, 0, reg::ZERO); // NULL: trivially representable
    a.li64(reg::T2, 0x2010); // 16-aligned but not 32-aligned
    a.csc(5, reg::T2, 0, 0);
    a.li64(reg::T2, 0x2008); // 8-aligned only: must trap
    a.csc(5, reg::T2, 0, 0);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    let err = run_to_syscall(&mut m).unwrap_err();
    match err.kind {
        cheri::sim::TrapKind::CapViolation(c) => {
            assert_eq!(c.code(), CapExcCode::AlignmentViolation);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(m.stats.cap_stores, 1, "the 16-aligned store succeeded first");
}

#[test]
fn unrepresentable_capability_store_traps() {
    // A byte-granular region too large for the 18-bit mantissa at a
    // misaligned base cannot be stored in 128 bits.
    let mut m = machine128();
    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, 3); // misaligned base
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, (1 << 20) + 5); // needs alignment 8
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T2, 0x2000);
    a.csc(1, reg::T2, 0, 0);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    let err = run_to_syscall(&mut m).unwrap_err();
    assert!(
        matches!(err.kind, cheri::sim::TrapKind::CapViolation(c)
            if c.code() == CapExcCode::AlignmentViolation),
        "{err:?}"
    );
}

#[test]
fn null_roundtrips_through_memory() {
    let mut m = machine128();
    let mut a = Asm::new(0x1000);
    a.cfromptr(5, 0, reg::ZERO); // C5 = NULL
    a.li64(reg::T2, 0x2000);
    a.csc(5, reg::T2, 0, 0);
    a.clc(6, reg::T2, 0, 0);
    a.cgettag(reg::T3, 6);
    a.cgetbase(reg::T8, 6);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    run_to_syscall(&mut m).unwrap();
    assert_eq!(m.cpu.gpr[reg::T3 as usize], 0);
    assert_eq!(m.cpu.gpr[reg::T8 as usize], 0);
}

#[test]
fn clc_imm_scales_by_16() {
    let mut m = machine128();
    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, 0x4000);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 0x100);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T2, 0x2000);
    a.csc(1, reg::T2, 1, 0); // imm 1 => byte offset 16
    a.clc(3, reg::T2, 1, 0);
    a.cgetbase(reg::T8, 3);
    a.syscall(0);
    let prog = a.finalize().unwrap();
    m.load_code(prog.base, &prog.words).unwrap();
    run_to_syscall(&mut m).unwrap();
    assert_eq!(m.cpu.gpr[reg::T8 as usize], 0x4000);
    // The image landed at 0x2010, not 0x2020.
    assert!(m.mem.read_u64(0x2010).unwrap() != 0);
    assert_eq!(m.mem.read_u64(0x2020).unwrap(), 0);
}
